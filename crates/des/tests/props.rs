//! Property-based tests for the DES kernel against naive reference models.

use nfv_des::{jain_index, DurationHistogram, EventQueue, QueueKind, SimTime, WindowedMedian};
use nfv_des::{Duration, Ewma};
use proptest::prelude::*;

/// One step of an interleaved queue workload: schedule events at an offset
/// from the current clock, or drain some.
#[derive(Debug, Clone, Copy)]
enum QueueOp {
    /// Push `count` events `delta` ns after the queue's clock (count > 1 is
    /// a same-instant burst, which exercises the seq tie-break).
    Push { delta: u64, count: u8 },
    /// Pop one event unconditionally.
    Pop,
    /// Pop one event only if due within `horizon` ns of the clock (the
    /// engine's `pop_before` batching path).
    PopBefore { horizon: u64 },
    /// Drain every event at the earliest pending instant (the engine's
    /// timer-coalescing `pop_batch_before` path).
    PopBatch,
}

fn queue_op() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        // Near-term offsets: land in the wheel's low levels.
        (0u64..5_000, 1u8..4).prop_map(|(delta, count)| QueueOp::Push { delta, count }),
        // Far-future timers: exercise high levels and cascades.
        (1u64 << 20..1u64 << 40, 1u8..3).prop_map(|(delta, count)| QueueOp::Push { delta, count }),
        Just(QueueOp::Pop),
        (0u64..10_000).prop_map(|horizon| QueueOp::PopBefore { horizon }),
        Just(QueueOp::PopBatch),
    ]
}

proptest! {
    /// The arena wheel, the classic wheel and the binary heap dequeue
    /// bit-identical `(time, tag)` streams for arbitrary interleavings of
    /// scheduling and draining, including same-instant bursts, far-future
    /// timers and whole-instant batch drains. This is the
    /// backend-equivalence property the whole-suite differential run (CI
    /// `consolidated-diff` matrix) checks end to end.
    #[test]
    fn queue_backends_dequeue_identically(
        ops in prop::collection::vec(queue_op(), 1..200),
    ) {
        let mut wheel: EventQueue<u32> = EventQueue::with_kind(QueueKind::Wheel);
        let mut classic: EventQueue<u32> = EventQueue::with_kind(QueueKind::WheelClassic);
        let mut heap: EventQueue<u32> = EventQueue::with_kind(QueueKind::Heap);
        let mut tag = 0u32;
        let (mut ow, mut oc, mut oh) = (Vec::new(), Vec::new(), Vec::new());
        for op in ops {
            match op {
                QueueOp::Push { delta, count } => {
                    // All queues have identical clocks (asserted below),
                    // so the same absolute time goes to each.
                    let at = SimTime::from_nanos(wheel.now().as_nanos() + delta);
                    for _ in 0..count {
                        wheel.push(at, tag);
                        classic.push(at, tag);
                        heap.push(at, tag);
                        tag += 1;
                    }
                }
                QueueOp::Pop => {
                    let a = wheel.pop();
                    prop_assert_eq!(a, classic.pop());
                    prop_assert_eq!(a, heap.pop());
                }
                QueueOp::PopBefore { horizon } => {
                    let limit = SimTime::from_nanos(wheel.now().as_nanos() + horizon);
                    let a = wheel.pop_before(limit);
                    prop_assert_eq!(a, classic.pop_before(limit));
                    prop_assert_eq!(a, heap.pop_before(limit));
                }
                QueueOp::PopBatch => {
                    let k = wheel.pop_batch_before(SimTime::MAX, &mut ow);
                    prop_assert_eq!(k, classic.pop_batch_before(SimTime::MAX, &mut oc));
                    prop_assert_eq!(k, heap.pop_batch_before(SimTime::MAX, &mut oh));
                    prop_assert_eq!(&ow, &oc);
                    prop_assert_eq!(&ow, &oh);
                }
            }
            prop_assert_eq!(wheel.now(), classic.now());
            prop_assert_eq!(wheel.now(), heap.now());
            prop_assert_eq!(wheel.len(), classic.len());
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.peek_time(), classic.peek_time());
            prop_assert_eq!(wheel.peek_time(), heap.peek_time());
        }
        // Drain all to the end: every remaining event must match too.
        loop {
            let a = wheel.pop();
            prop_assert_eq!(a, classic.pop());
            prop_assert_eq!(a, heap.pop());
            if a.is_none() {
                break;
            }
        }
    }

    /// The event queue pops in exactly sorted (time, insertion) order.
    #[test]
    fn event_queue_matches_stable_sort(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut reference: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        reference.sort(); // stable: equal times keep insertion order
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_nanos(), i));
        }
        prop_assert_eq!(popped, reference);
    }

    /// Histogram percentiles stay within the log-bucket relative error of
    /// the exact order statistics.
    #[test]
    fn histogram_percentile_bounded_error(
        samples in prop::collection::vec(1u64..1_000_000, 10..500),
        p in 0.0f64..100.0,
    ) {
        let mut h = DurationHistogram::new();
        for &s in &samples {
            h.record(Duration::from_nanos(s));
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        let exact = sorted[rank] as f64;
        let est = h.percentile(p).unwrap().as_nanos() as f64;
        // one bucket below, never above by more than a bucket width (~6.25%)
        prop_assert!(est <= exact * 1.0001, "est {est} > exact {exact}");
        prop_assert!(est >= exact * 0.93 - 1.0, "est {est} << exact {exact}");
    }

    /// Windowed median equals the median of the samples inside the window.
    #[test]
    fn windowed_median_matches_naive(
        samples in prop::collection::vec((0u64..1_000, 0u64..10_000), 1..200),
    ) {
        let mut sorted_by_time = samples.clone();
        sorted_by_time.sort_by_key(|&(t, _)| t);
        let window = Duration::from_nanos(300);
        let mut m = WindowedMedian::new(window);
        let mut last_t = 0;
        for &(t, v) in &sorted_by_time {
            m.observe(SimTime::from_nanos(t), v);
            last_t = t;
        }
        let horizon = last_t.saturating_sub(300);
        let mut in_window: Vec<u64> = sorted_by_time
            .iter()
            .filter(|&&(t, _)| t >= horizon)
            .map(|&(_, v)| v)
            .collect();
        in_window.sort_unstable();
        prop_assert_eq!(m.median(), Some(in_window[in_window.len() / 2]));
    }

    /// Jain's index is always in [1/n, 1] for non-degenerate inputs.
    #[test]
    fn jain_bounds(xs in prop::collection::vec(0.001f64..1e6, 1..32)) {
        let j = jain_index(&xs);
        let n = xs.len() as f64;
        prop_assert!(j <= 1.0 + 1e-9);
        prop_assert!(j >= 1.0 / n - 1e-9);
    }

    /// EWMA stays within the min/max envelope of its inputs.
    #[test]
    fn ewma_within_envelope(samples in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut e = Ewma::new(1, 8);
        for &s in &samples {
            e.observe(s);
        }
        let lo = *samples.iter().min().unwrap();
        let hi = *samples.iter().max().unwrap();
        prop_assert!(e.value() >= lo.saturating_sub(1) && e.value() <= hi + 1,
            "ewma {} outside [{lo}, {hi}]", e.value());
    }
}
