//! Service chain registry.
//!
//! A chain is an ordered list of NFs a packet traverses. Chains are
//! installed at configuration time (the paper configures them "using simple
//! configuration files or from an external orchestrator"), and can be
//! defined per-flow — the granularity §3.3 recommends to minimize
//! head-of-line blocking under backpressure.

use nfv_pkt::{ChainId, NfId};

/// All installed service chains.
#[derive(Debug, Default)]
pub struct ChainRegistry {
    chains: Vec<Vec<NfId>>,
}

impl ChainRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a chain; returns its id.
    ///
    /// # Panics
    /// Panics on an empty path or a path with immediate self-loops
    /// (`[a, a]`), which the paper's platform cannot express either.
    pub fn install(&mut self, path: &[NfId]) -> ChainId {
        assert!(!path.is_empty(), "chain must contain at least one NF");
        for w in path.windows(2) {
            assert_ne!(w[0], w[1], "chain has an immediate self-loop");
        }
        let id = ChainId(self.chains.len() as u32);
        self.chains.push(path.to_vec());
        id
    }

    /// Full path of a chain.
    pub fn path(&self, chain: ChainId) -> &[NfId] {
        &self.chains[chain.index()]
    }

    /// First NF of the chain — where admission control (selective early
    /// discard) is applied.
    pub fn entry(&self, chain: ChainId) -> NfId {
        self.chains[chain.index()][0]
    }

    /// NF at `hop` (0-based); `None` past the end.
    pub fn nf_at(&self, chain: ChainId, hop: usize) -> Option<NfId> {
        self.chains[chain.index()].get(hop).copied()
    }

    /// The hop after `hop`, or `None` if the packet exits the system.
    pub fn next_after(&self, chain: ChainId, hop: usize) -> Option<NfId> {
        self.nf_at(chain, hop + 1)
    }

    /// Length of a chain in NFs.
    pub fn len_of(&self, chain: ChainId) -> usize {
        self.chains[chain.index()].len()
    }

    /// Number of chains installed.
    pub fn count(&self) -> usize {
        self.chains.len()
    }

    /// Iterate over all chain ids.
    pub fn ids(&self) -> impl Iterator<Item = ChainId> {
        (0..self.chains.len() as u32).map(ChainId)
    }

    /// Does `chain` include `nf` anywhere on its path?
    pub fn contains(&self, chain: ChainId, nf: NfId) -> bool {
        self.chains[chain.index()].contains(&nf)
    }

    /// First hop index at which `nf` appears on `chain`, if any.
    pub fn first_position(&self, chain: ChainId, nf: NfId) -> Option<usize> {
        self.chains[chain.index()].iter().position(|&x| x == nf)
    }

    /// *Last* hop index at which `nf` appears on `chain`, if any. This is
    /// the position that decides whether a bottleneck is *downstream* of
    /// the NF (only then is its pending work for the chain doomed): a
    /// chain may revisit an NF after the bottleneck, and judging the NF by
    /// its first hop would park the very instance whose later hop has to
    /// drain the congestion — a throttle deadlock.
    pub fn last_position(&self, chain: ChainId, nf: NfId) -> Option<usize> {
        self.chains[chain.index()].iter().rposition(|&x| x == nf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_and_traverse() {
        let mut r = ChainRegistry::new();
        let c = r.install(&[NfId(0), NfId(1), NfId(2)]);
        assert_eq!(r.entry(c), NfId(0));
        assert_eq!(r.nf_at(c, 1), Some(NfId(1)));
        assert_eq!(r.next_after(c, 1), Some(NfId(2)));
        assert_eq!(r.next_after(c, 2), None);
        assert_eq!(r.len_of(c), 3);
        assert!(r.contains(c, NfId(2)));
        assert!(!r.contains(c, NfId(3)));
    }

    #[test]
    fn multiple_chains_share_nfs() {
        let mut r = ChainRegistry::new();
        let c1 = r.install(&[NfId(0), NfId(1), NfId(3)]);
        let c2 = r.install(&[NfId(0), NfId(2), NfId(3)]);
        assert_ne!(c1, c2);
        assert_eq!(r.count(), 2);
        assert_eq!(r.ids().count(), 2);
        assert_eq!(r.entry(c1), r.entry(c2));
    }

    #[test]
    fn chains_may_revisit_an_nf_nonadjacently() {
        let mut r = ChainRegistry::new();
        let c = r.install(&[NfId(0), NfId(1), NfId(0)]);
        assert_eq!(r.nf_at(c, 2), Some(NfId(0)));
    }

    #[test]
    fn first_and_last_position_differ_on_repeated_nfs() {
        let mut r = ChainRegistry::new();
        let c = r.install(&[NfId(0), NfId(1), NfId(0)]);
        assert_eq!(r.first_position(c, NfId(0)), Some(0));
        assert_eq!(r.last_position(c, NfId(0)), Some(2));
        // single occurrence: both agree
        assert_eq!(r.first_position(c, NfId(1)), Some(1));
        assert_eq!(r.last_position(c, NfId(1)), Some(1));
        assert_eq!(r.last_position(c, NfId(9)), None);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn adjacent_duplicate_rejected() {
        let mut r = ChainRegistry::new();
        r.install(&[NfId(0), NfId(0)]);
    }

    #[test]
    #[should_panic(expected = "at least one NF")]
    fn empty_chain_rejected() {
        let mut r = ChainRegistry::new();
        r.install(&[]);
    }
}
