//! The NFV platform: shared mempool, NIC, flow table, NF runtimes, chains,
//! OS scheduler and storage — plus the *mechanism* halves of the manager's
//! RX and TX threads.
//!
//! Policy stays out of this file by design (mirroring the OpenNetVM /
//! NFVnice split): admission control, ECN marking, wakeup classification
//! and weight assignment are injected by the engine (the `nfvnice` crate)
//! through closures and explicit calls. Everything here is bookkeeping
//! that would exist on any run of the platform, NFVnice or not.

use crate::chain::ChainRegistry;
use crate::nf::{
    BlockReason, ForwardAll, IoMode, NfAction, NfHealth, NfRuntime, NfSpec, PacketHandler,
};
use crate::stats::{DropLocation, FlowStats, PlatformStats, TcpEvent, TcpEventKind};
use nfv_des::{CpuFreq, Duration, SimTime};
use nfv_io::{StorageDevice, WriteOutcome};
use nfv_obs::{DropCause, SleepReason, TraceKind, TraceSink, NO_ID};
use nfv_pkt::{
    ChainId, Ecn, Enqueue, FlowAging, FlowId, FlowTable, FlowTableKind, Mempool, NfId, Nic, Packet,
    Proto, TuplePattern, WireFrame,
};
use nfv_sched::{CfsParams, CgroupCpu, OsScheduler, Policy, SchedBackend};
use std::collections::BTreeSet;

/// Entry-admission hook for [`Platform::rx_poll`]: the NFVnice selective
/// early discard policy, injected by the engine (always-true without
/// backpressure). Called as `admit(chain, flow, on_path)`; `on_path(t)`
/// answers "does instance `t` lie on this flow's resolved path?", so
/// with replicas the policy sheds only flows that would actually
/// traverse a congested instance — a flow sharded to a fresh replica is
/// not punished for its sibling's queue. Without replicas every
/// instance is on every path and the hook degenerates to the classic
/// per-chain check.
pub type AdmitFn<'a> = dyn FnMut(ChainId, FlowId, &mut dyn FnMut(NfId) -> bool) -> bool + 'a;

/// Static platform configuration.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Number of cores available to NF processes (manager threads run on
    /// separate dedicated cores, as in the paper).
    pub nf_cores: usize,
    /// Kernel scheduling policy for NF tasks.
    pub policy: Policy,
    /// Which scheduler implementation drives the run (hook-based driver
    /// or the classic monolithic oracle — byte-identical by contract).
    pub sched_backend: SchedBackend,
    /// CFS tunables (ignored by RR).
    pub cfs: CfsParams,
    /// Direct context-switch cost.
    pub cs_cost: Duration,
    /// NF core frequency (cycles → time).
    pub freq: CpuFreq,
    /// Shared mempool capacity in packets.
    pub mempool_capacity: usize,
    /// NIC hardware RX queue depth.
    pub nic_rx_capacity: usize,
    /// `libnf` batch size (the paper processes ≤ 32 packets per batch).
    pub batch_size: usize,
    /// Flow-table index backend (sharded engine or the flat oracle —
    /// byte-identical by contract, like `sched_backend`).
    pub flow_table: FlowTableKind,
    /// Flow aging/eviction policy (off by default: `idle_epochs == 0`
    /// keeps default runs byte-identical to the pre-aging engine).
    pub flow_aging: FlowAging,
    /// Track per-flow rate meters and latency histograms (~4 KB/flow).
    /// Million-flow scale runs turn this off; counters are always kept.
    pub flow_detail: bool,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            nf_cores: 1,
            policy: Policy::CfsNormal,
            sched_backend: SchedBackend::default_backend(),
            cfs: CfsParams::default(),
            cs_cost: Duration::from_nanos(1_500),
            freq: CpuFreq::PAPER_DEFAULT,
            mempool_capacity: 524_288,
            nic_rx_capacity: Nic::DEFAULT_RX_CAPACITY,
            batch_size: 32,
            flow_table: FlowTableKind::default_kind(),
            flow_aging: FlowAging::default(),
            flow_detail: true,
        }
    }
}

/// Verdict of [`Platform::plan_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPlan {
    /// The NF cannot make progress; it blocks on its semaphore for the
    /// given reason. (For `Backpressure` the yield flag has been consumed.)
    Block(BlockReason),
    /// The NF dequeued `n` packets and will occupy the CPU for `duration`.
    Run {
        /// CPU time this batch consumes.
        duration: Duration,
        /// Packets in the batch.
        n: usize,
    },
}

/// Effects of completing a batch, for the engine to act on.
#[derive(Debug, Default)]
pub struct BatchEffects {
    /// The NF must block after this batch (I/O stall).
    pub block: Option<BlockReason>,
    /// Absolute time of a *synchronous* write completion to wake the NF at.
    pub io_wake_at: Option<SimTime>,
    /// Completion times of asynchronous flushes submitted by this batch;
    /// the engine schedules an I/O-completion event for each.
    pub flush_completions: Vec<SimTime>,
}

/// Outcome of an I/O completion delivered to an NF.
#[derive(Debug, Default)]
pub struct IoCompleteOutcome {
    /// A queued buffer started flushing; schedule its completion too.
    pub next_completion: Option<SimTime>,
    /// The NF was blocked on I/O and should be woken.
    pub wake: bool,
}

/// The assembled platform.
pub struct Platform {
    /// Configuration (immutable after construction).
    pub cfg: PlatformConfig,
    /// Shared packet buffer pool.
    pub mempool: Mempool,
    /// The NIC.
    pub nic: Nic,
    /// Flow classification table.
    pub flow_table: FlowTable,
    /// Installed service chains.
    pub chains: ChainRegistry,
    /// NF runtimes, indexed by `NfId`.
    pub nfs: Vec<NfRuntime>,
    /// OS scheduler for NF cores.
    pub sched: OsScheduler,
    /// cgroup CPU controller.
    pub cgroups: CgroupCpu,
    /// Storage device shared by I/O-performing NFs.
    pub storage: StorageDevice,
    /// Global statistics.
    pub stats: PlatformStats,
    /// Flows whose packets trigger storage I/O at NFs that have an I/O
    /// profile.
    pub io_flows: BTreeSet<FlowId>,
    /// Structured-event sink (off unless observability is enabled).
    pub trace: TraceSink,
    handlers: Vec<Option<Box<dyn PacketHandler>>>,
    /// Per-NF: handler is the stock [`ForwardAll`] (stateless, always
    /// forwards), letting `finish_batch` skip the dynamic dispatch.
    trivial_handler: Vec<bool>,
    tcp_flows: BTreeSet<FlowId>,
    scratch_frames: Vec<WireFrame>,
    /// Number of NFs currently `Down` — lets the per-frame dead-chain
    /// check in `rx_poll` short-circuit to nothing in fault-free runs.
    down_nfs: usize,
    /// Live replica instances per base NF, in spawn order. Chains always
    /// name base NFs; [`Platform::resolve_instance`] routes each packet
    /// to an instance of the group at the enqueue sites. Empty (and
    /// O(1)-skipped everywhere) unless elastic scale-out spawned one.
    replicas_of: std::collections::BTreeMap<NfId, Vec<NfId>>,
    /// Per replica group: flows minted *before* the first replica existed
    /// (`flow.0 < floor`) stay pinned to the base instance, so per-flow
    /// state never splits mid-flow. Only flows classified after scale-out
    /// are RSS-sharded.
    replica_floor: std::collections::BTreeMap<NfId, u32>,
    /// RSS consistency across group-size changes: the instance a (post-
    /// floor) flow was first sharded to, pinned for the flow's lifetime.
    /// Pins to a retired replica are dropped at scale-in; those flows
    /// re-shard over the remaining group on their next packet.
    flow_pins: std::collections::BTreeMap<(NfId, FlowId), NfId>,
}

impl Platform {
    /// Build an empty platform.
    pub fn new(cfg: PlatformConfig) -> Self {
        let sched = OsScheduler::with_backend(
            cfg.nf_cores,
            cfg.policy,
            cfg.cfs,
            cfg.cs_cost,
            cfg.sched_backend,
        );
        Platform {
            mempool: Mempool::new(cfg.mempool_capacity),
            nic: Nic::new(cfg.nic_rx_capacity),
            flow_table: FlowTable::with_kind(cfg.flow_table),
            chains: ChainRegistry::new(),
            nfs: Vec::new(),
            sched,
            cgroups: CgroupCpu::new(CgroupCpu::DEFAULT_WRITE_COST),
            storage: StorageDevice::default_ssd(),
            stats: PlatformStats::default(),
            io_flows: BTreeSet::new(),
            trace: TraceSink::off(),
            handlers: Vec::new(),
            trivial_handler: Vec::new(),
            tcp_flows: BTreeSet::new(),
            scratch_frames: Vec::new(),
            down_nfs: 0,
            replicas_of: std::collections::BTreeMap::new(),
            replica_floor: std::collections::BTreeMap::new(),
            flow_pins: std::collections::BTreeMap::new(),
            cfg,
        }
    }

    /// Deploy an NF (with the default forward-everything handler).
    pub fn add_nf(&mut self, spec: NfSpec) -> NfId {
        let id = self.add_nf_with_handler(spec, Box::new(ForwardAll));
        // The stock handler is a stateless forward: `finish_batch` skips
        // the per-packet dynamic dispatch for it (same action, no call).
        self.trivial_handler[id.index()] = true;
        id
    }

    /// Deploy an NF with a custom packet handler.
    pub fn add_nf_with_handler(&mut self, spec: NfSpec, handler: Box<dyn PacketHandler>) -> NfId {
        assert!(spec.core < self.cfg.nf_cores, "NF pinned to missing core");
        let task = self.sched.add_task(spec.name.clone(), spec.core);
        self.cgroups.register(task);
        let id = NfId(self.nfs.len() as u32);
        self.nfs.push(NfRuntime::new(spec, task));
        self.handlers.push(Some(handler));
        self.trivial_handler.push(false);
        id
    }

    /// Install a service chain over deployed NFs.
    pub fn install_chain(&mut self, path: &[NfId]) -> ChainId {
        for nf in path {
            assert!(nf.index() < self.nfs.len(), "chain references missing NF");
        }
        let id = self.chains.install(path);
        self.stats.chains.push(Default::default());
        id
    }

    /// Install a flow rule steering `tuple` onto `chain`. Explicit
    /// installs are pinned in the flow table: aging never evicts them.
    pub fn install_flow(&mut self, tuple: nfv_pkt::FiveTuple, chain: ChainId) -> FlowId {
        let flow = self.flow_table.install(tuple, chain);
        self.grow_flow_stats(flow);
        if tuple.proto == Proto::Tcp {
            self.tcp_flows.insert(flow);
        }
        flow
    }

    /// Install a wildcard rule steering `pattern` onto `chain` at
    /// `priority` (higher wins on overlap). Flows learned through a
    /// wildcard are cached exact entries, subject to aging.
    pub fn install_wildcard(&mut self, pattern: TuplePattern, chain: ChainId, priority: i32) {
        self.flow_table.install_wildcard(pattern, chain, priority);
    }

    /// Advance flow aging by one epoch and evict wildcard-learned flows
    /// idle for more than `idle_epochs` completed epochs (ids appended to
    /// `evicted`, ascending). Explicit installs — including every TCP
    /// flow — are pinned, so id recycling can never misroute TCP feedback
    /// or I/O-flow marks. Per-flow delivery stats are kept across
    /// eviction: a recycled id continues its slot's accounting, and the
    /// table's forgotten-counters keep the conservation ledger balanced.
    pub fn age_flows(&mut self, idle_epochs: u32, evicted: &mut Vec<FlowId>) {
        self.flow_table.age(idle_epochs, evicted);
    }

    /// Size per-flow stats up to `flow`, honoring the detail knob.
    fn grow_flow_stats(&mut self, flow: FlowId) {
        while self.stats.flows.len() <= flow.index() {
            self.stats.flows.push(if self.cfg.flow_detail {
                FlowStats::detailed()
            } else {
                FlowStats::compact()
            });
        }
    }

    /// Mark a flow as triggering storage I/O at NFs with I/O profiles.
    pub fn set_io_flow(&mut self, flow: FlowId) {
        self.io_flows.insert(flow);
    }

    /// The core an NF is pinned to.
    pub fn core_of(&self, nf: NfId) -> usize {
        self.nfs[nf.index()].spec.core
    }

    /// Ids of the NFs pinned to `core`, in deployment order. The engine
    /// builds its per-core domains from this.
    pub fn nfs_on_core(&self, core: usize) -> impl Iterator<Item = NfId> + '_ {
        self.nfs
            .iter()
            .enumerate()
            .filter(move |(_, nf)| nf.spec.core == core)
            .map(|(i, _)| NfId(i as u32))
    }

    /// The NF currently running on `core`, if any.
    pub fn running_nf(&self, core: usize) -> Option<NfId> {
        let task = self.sched.current(core)?;
        // Task ids and NF ids are created in lockstep.
        Some(NfId(task.0))
    }

    // ------------------------------------------------------------------
    // RX thread mechanism
    // ------------------------------------------------------------------

    /// Poll every pending NIC frame, classify, apply entry admission and
    /// enqueue to each chain's first NF (see [`AdmitFn`] for the
    /// admission hook contract). TCP congestion feedback is appended to
    /// `tcp_out`.
    pub fn rx_poll(&mut self, now: SimTime, admit: &mut AdmitFn<'_>, tcp_out: &mut Vec<TcpEvent>) {
        let mut frames = std::mem::take(&mut self.scratch_frames);
        frames.clear();
        self.nic.take_rx(&mut frames);
        // Per-poll decision cache: traffic sources emit per-flow bursts,
        // so consecutive frames usually repeat a flow — and within one
        // poll nothing a frame's admission depends on can change (NF
        // health, backpressure marks and replica pins are only mutated by
        // other events). Classification itself still runs per frame (it
        // carries the per-packet counters); the chain-health check, entry
        // resolution and admission callback run once per flow run.
        let mut cached_flow = FlowId(u32::MAX);
        let mut cached_entry = NfId(0);
        let mut cached_admit = false;
        for frame in frames.drain(..) {
            let Some((flow, chain)) = self.flow_table.classify(&frame.tuple, frame.size) else {
                self.stats.unclassified += 1;
                self.trace_drop(now, DropCause::Unclassified, NO_ID, NO_ID, NO_ID);
                continue;
            };
            let entry;
            if flow == cached_flow {
                entry = cached_entry;
                self.nfs[entry.index()].note_arrival();
                if !cached_admit {
                    self.stats.dropped(flow, chain, DropLocation::EntryThrottle);
                    self.trace_drop(now, DropCause::EntryThrottle, flow.0, chain.0, entry.0);
                    self.note_tcp_drop(flow, frame.seq, tcp_out);
                    continue;
                }
            } else {
                // Wildcard rules can mint new flows at runtime; keep
                // per-flow stats sized accordingly.
                self.grow_flow_stats(flow);
                // Graceful degradation: a chain routed through a dead NF
                // can never deliver, so shed at entry rather than filling
                // rings and the mempool with doomed packets. Shed before
                // the λ accounting — this traffic is not offered load for
                // the (live) entry NF, and counting it would inflate its
                // weight for the duration of the outage.
                if let Some(dead) = self.chain_down_nf(chain) {
                    self.stats.dropped(flow, chain, DropLocation::NfDown(dead));
                    self.trace_drop(now, DropCause::NfDown, flow.0, chain.0, dead.0);
                    self.note_tcp_drop(flow, frame.seq, tcp_out);
                    continue;
                }
                // The entry NF's offered load (λ) is measured
                // pre-admission: the RX thread sees every classified
                // frame, and rate-cost shares must reflect demand, not the
                // post-throttle trickle. With replicas, the flow is first
                // sharded to its instance so each instance's estimator
                // sees only its own demand.
                entry = {
                    let e = self.chains.entry(chain);
                    self.resolve_instance(e, flow)
                };
                self.nfs[entry.index()].note_arrival();
                let shed = {
                    let this = &mut *self;
                    let mut on_path = |t: NfId| {
                        let base = this.canonical_of(t);
                        this.resolve_instance(base, flow) == t
                    };
                    !admit(chain, flow, &mut on_path)
                };
                cached_flow = flow;
                cached_entry = entry;
                cached_admit = !shed;
                if shed {
                    self.stats.dropped(flow, chain, DropLocation::EntryThrottle);
                    self.trace_drop(now, DropCause::EntryThrottle, flow.0, chain.0, entry.0);
                    self.note_tcp_drop(flow, frame.seq, tcp_out);
                    continue;
                }
            }
            let pkt = Packet {
                tuple: frame.tuple,
                flow,
                chain,
                size: frame.size,
                arrival: frame.arrival,
                enqueued_at: now,
                hops_done: 0,
                ecn: frame.ecn,
                seq: frame.seq,
                cost_class: frame.cost_class,
            };
            let Some(pid) = self.mempool.alloc(pkt) else {
                self.stats.mempool_fail += 1;
                self.stats
                    .dropped(flow, chain, DropLocation::MempoolExhausted);
                self.trace_drop(now, DropCause::MempoolExhausted, flow.0, chain.0, entry.0);
                self.note_tcp_drop(flow, frame.seq, tcp_out);
                continue;
            };
            let nf = &mut self.nfs[entry.index()];
            match nf.rx.enqueue(pid) {
                Enqueue::Ok { .. } => nf.note_pending(chain),
                Enqueue::Full => {
                    self.mempool.free(pid);
                    self.stats
                        .dropped(flow, chain, DropLocation::RingFull(entry));
                    self.trace_drop(now, DropCause::RingFull, flow.0, chain.0, entry.0);
                    self.note_tcp_drop(flow, frame.seq, tcp_out);
                }
            }
        }
        self.scratch_frames = frames;
    }

    fn trace_drop(&self, now: SimTime, cause: DropCause, flow: u32, chain: u32, nf: u32) {
        self.trace.record(
            now,
            TraceKind::PacketDrop {
                cause,
                flow,
                chain,
                nf,
            },
        );
    }

    fn note_tcp_drop(&mut self, flow: FlowId, seq: u64, tcp_out: &mut Vec<TcpEvent>) {
        // Emptiness check first: UDP-only runs pay one branch per drop
        // instead of a tree probe.
        if !self.tcp_flows.is_empty() && self.tcp_flows.contains(&flow) {
            tcp_out.push(TcpEvent {
                flow,
                seq,
                kind: TcpEventKind::Dropped,
            });
        }
    }

    // ------------------------------------------------------------------
    // TX thread mechanism
    // ------------------------------------------------------------------

    /// Drain every NF's TX ring: forward packets to the next NF in their
    /// chain (marking ECN via `mark_ce` when the policy says so) or out the
    /// NIC at chain end. Returns, via `woken_tx`, NFs whose full TX ring
    /// gained room (local backpressure release).
    pub fn tx_drain(
        &mut self,
        now: SimTime,
        mark_ce: &mut dyn FnMut(NfId) -> bool,
        tcp_out: &mut Vec<TcpEvent>,
        woken_tx: &mut Vec<NfId>,
    ) {
        for i in 0..self.nfs.len() {
            while let Some(pid) = self.nfs[i].tx.dequeue() {
                let (flow, chain, hops, seq, size, arrival, ecn) = {
                    let p = self.mempool.get(pid);
                    (
                        p.flow,
                        p.chain,
                        p.hops_done,
                        p.seq,
                        p.size,
                        p.arrival,
                        p.ecn,
                    )
                };
                match self.chains.nf_at(chain, hops as usize) {
                    None => {
                        // Chain complete: out the wire.
                        self.mempool.free(pid);
                        self.nic.transmit(size);
                        self.stats.delivered(flow, chain, size, now.since(arrival));
                        // Emptiness check first: UDP-only runs skip the
                        // tree probe on every delivered packet.
                        if !self.tcp_flows.is_empty() && self.tcp_flows.contains(&flow) {
                            tcp_out.push(TcpEvent {
                                flow,
                                seq,
                                kind: TcpEventKind::Delivered { ce: ecn == Ecn::Ce },
                            });
                        }
                    }
                    Some(next) => {
                        // Chains name base NFs; shard the flow across the
                        // hop's replica group (no-op without replicas).
                        let next = self.resolve_instance(next, flow);
                        // A dead next hop cannot accept the packet; the
                        // upstream NF's processing is wasted, same as a
                        // full-ring drop. (Transient: entry shedding stops
                        // new traffic for the chain the moment the NF dies.)
                        if self.nfs[next.index()].health == NfHealth::Down {
                            self.mempool.free(pid);
                            self.stats.dropped(flow, chain, DropLocation::NfDown(next));
                            self.trace_drop(now, DropCause::NfDown, flow.0, chain.0, next.0);
                            self.nfs[i].wasted_drops += 1;
                            self.nfs[i].wasted_meter.add(1);
                            self.note_tcp_drop(flow, seq, tcp_out);
                            continue;
                        }
                        {
                            let p = self.mempool.get_mut(pid);
                            p.enqueued_at = now;
                            if p.ecn == Ecn::Ect0 && mark_ce(next) {
                                p.ecn = Ecn::Ce;
                                self.trace.record(now, TraceKind::EcnMark { nf: next.0 });
                            }
                        }
                        let nf = &mut self.nfs[next.index()];
                        nf.note_arrival();
                        match nf.rx.enqueue(pid) {
                            Enqueue::Ok { .. } => nf.note_pending(chain),
                            Enqueue::Full => {
                                self.mempool.free(pid);
                                self.stats
                                    .dropped(flow, chain, DropLocation::RingFull(next));
                                self.trace_drop(now, DropCause::RingFull, flow.0, chain.0, next.0);
                                // The previous NF's work is wasted.
                                self.nfs[i].wasted_drops += 1;
                                self.nfs[i].wasted_meter.add(1);
                                self.note_tcp_drop(flow, seq, tcp_out);
                            }
                        }
                    }
                }
            }
        }
        // Local backpressure release: wake NFs that were stalled on a full
        // TX ring and now have room for their whole outbox.
        for i in 0..self.nfs.len() {
            let nf = &self.nfs[i];
            if nf.blocked == Some(BlockReason::TxFull)
                && nf.tx.capacity() - nf.tx.len() >= nf.outbox.len().max(1)
            {
                woken_tx.push(NfId(i as u32));
            }
        }
    }

    // ------------------------------------------------------------------
    // NF execution mechanism (libnf batch loop)
    // ------------------------------------------------------------------

    /// Begin a batch for `nf` (the current task on its core). Flushes the
    /// outbox, honors the yield flag, and dequeues up to `batch_size`
    /// packets, computing the batch's CPU cost from the NF's cost model.
    pub fn plan_batch(&mut self, nf_id: NfId) -> BatchPlan {
        let batch = self.cfg.batch_size;
        let nf = &mut self.nfs[nf_id.index()];
        debug_assert!(nf.health != NfHealth::Down, "plan_batch for dead NF");
        if nf.health == NfHealth::Stalled {
            // Wedged process: it keeps its task runnable and burns a
            // batch's worth of CPU without touching its rings — no
            // dequeues, no outbox flush, no yield cooperation, and the
            // progress counters stay flat for the watchdog to notice.
            let spin = nf.spec.cost.mean_cycles().max(1) * batch as u64;
            let duration = self
                .cfg
                .freq
                .cycles_to_duration(spin)
                .max(Duration::from_nanos(1));
            nf.current_batch = Some((duration, 0));
            return BatchPlan::Run { duration, n: 0 };
        }
        // Flush previously processed packets that did not fit in TX.
        while let Some(&pid) = nf.outbox.front() {
            match nf.tx.enqueue(pid) {
                Enqueue::Ok { .. } => {
                    nf.outbox.pop_front();
                }
                Enqueue::Full => break,
            }
        }
        if !nf.outbox.is_empty() {
            return BatchPlan::Block(BlockReason::TxFull);
        }
        if nf.yield_flag {
            nf.yield_flag = false;
            return BatchPlan::Block(BlockReason::Backpressure);
        }
        if nf.rx.is_empty() {
            return BatchPlan::Block(BlockReason::EmptyRx);
        }
        let mut cycles = 0u64;
        let mut n = 0usize;
        while n < batch {
            let Some(pid) = nf.rx.dequeue() else { break };
            let pkt = self.mempool.get(pid);
            // `cost_factor` is the transient slowdown fault (1 = nominal).
            cycles += nf.spec.cost.cycles(pkt.cost_class) * nf.cost_factor;
            let chain = pkt.chain;
            if !nf.note_dequeued(chain) {
                self.stats.pending_desync += 1;
            }
            nf.in_progress.push(pid);
            n += 1;
        }
        let duration = self
            .cfg
            .freq
            .cycles_to_duration(cycles)
            .max(Duration::from_nanos(1));
        nf.current_batch = Some((duration, n));
        nf.last_ppp = Duration::from_nanos(duration.as_nanos() / n as u64);
        BatchPlan::Run { duration, n }
    }

    /// Complete the batch started by [`Platform::plan_batch`]: run the
    /// handler on each packet, perform storage writes, and push survivors
    /// toward the TX ring (overflow goes to the outbox).
    pub fn finish_batch(&mut self, nf_id: NfId, now: SimTime) -> BatchEffects {
        let mut fx = BatchEffects::default();
        let idx = nf_id.index();
        // Take the batch vec so the handler can borrow `self`, but hand it
        // back (cleared) afterwards — its capacity is reused every batch.
        let mut pids = std::mem::take(&mut self.nfs[idx].in_progress);
        let (_, n) = self.nfs[idx]
            .current_batch
            .take()
            .expect("finish without plan");
        debug_assert_eq!(n, pids.len());
        let mut handler = self.handlers[idx].take().expect("handler re-entry");
        let trivial = self.trivial_handler[idx];
        let io_spec = self.nfs[idx].spec.io;
        let io_on = io_spec.is_some() && !self.io_flows.is_empty();
        let mut sync_bytes = 0u64;
        for &pid in &pids {
            // One slab access covers the handler call, the post-handler
            // field reads, and the forward hop bump. The stock
            // [`ForwardAll`] handler is a stateless no-op: skip its
            // dynamic dispatch and use its (constant) action directly.
            let p = self.mempool.get_mut(pid);
            let action = if trivial {
                NfAction::Forward
            } else {
                handler.handle(&mut *p, now)
            };
            let (flow, chain) = (p.flow, p.chain);
            if action == NfAction::Forward {
                p.hops_done += 1;
            }
            // Storage I/O for registered flows.
            if io_on && self.io_flows.contains(&flow) {
                let io = io_spec.expect("io_on implies io_spec");
                match io.mode {
                    IoMode::Sync => sync_bytes += io.bytes_per_packet,
                    IoMode::Async { .. } => {
                        let dbuf = self.nfs[idx].dbuf.as_mut().expect("async io w/o dbuf");
                        match dbuf.write(now, io.bytes_per_packet, &mut self.storage) {
                            WriteOutcome::Buffered => {}
                            WriteOutcome::Flushing { completion } => {
                                fx.flush_completions.push(completion);
                            }
                            WriteOutcome::Blocked => {
                                // Both buffers busy: the NF suspends
                                // after this batch; it is woken by the
                                // in-flight flush's completion event.
                                fx.block = Some(BlockReason::Io);
                            }
                        }
                    }
                }
            }
            match action {
                NfAction::Drop => {
                    self.mempool.free(pid);
                    self.stats
                        .dropped(flow, chain, DropLocation::Handler(nf_id));
                    self.trace_drop(now, DropCause::Handler, flow.0, chain.0, nf_id.0);
                }
                NfAction::Forward => {
                    let nf = &mut self.nfs[idx];
                    match nf.tx.enqueue(pid) {
                        Enqueue::Ok { .. } => {}
                        Enqueue::Full => nf.outbox.push_back(pid),
                    }
                }
            }
        }
        let nf = &mut self.nfs[idx];
        nf.processed += pids.len() as u64;
        nf.processed_meter.add(pids.len() as u64);
        self.handlers[idx] = Some(handler);
        pids.clear();
        self.nfs[idx].in_progress = pids;
        if sync_bytes > 0 {
            // Blocking write: the NF sleeps until the device finishes.
            let completion = self.storage.submit_write(now, sync_bytes);
            fx.block = Some(BlockReason::Io);
            fx.io_wake_at = Some(completion);
        }
        fx
    }

    /// Deliver a storage-flush completion to `nf`.
    pub fn on_io_complete(&mut self, nf_id: NfId, now: SimTime) -> IoCompleteOutcome {
        let idx = nf_id.index();
        let next_completion = match self.nfs[idx].dbuf.as_mut() {
            Some(dbuf) => dbuf.on_flush_complete(now, &mut self.storage),
            None => None, // synchronous write completion
        };
        IoCompleteOutcome {
            next_completion,
            wake: self.nfs[idx].blocked == Some(BlockReason::Io),
        }
    }

    /// Wake a blocked NF: clears its block reason and marks its task
    /// runnable. Returns `true` if the NF was indeed blocked. A dead NF
    /// is never woken — its task stays parked until respawn.
    pub fn wake_nf(&mut self, nf_id: NfId, now: SimTime) -> bool {
        let nf = &mut self.nfs[nf_id.index()];
        if nf.health == NfHealth::Down || nf.blocked.is_none() {
            return false;
        }
        nf.blocked = None;
        let task = nf.task;
        self.sched.wake(task, now);
        self.trace.record(now, TraceKind::NfWake { nf: nf_id.0 });
        true
    }

    /// Record that the NF on `core` blocked for `reason` (after the engine
    /// has told the scheduler).
    pub fn mark_blocked(&mut self, nf_id: NfId, reason: BlockReason, now: SimTime) {
        self.nfs[nf_id.index()].blocked = Some(reason);
        let reason = match reason {
            BlockReason::EmptyRx => SleepReason::EmptyRx,
            BlockReason::Backpressure => SleepReason::Backpressure,
            BlockReason::TxFull => SleepReason::TxFull,
            BlockReason::Io => SleepReason::Io,
        };
        self.trace.record(
            now,
            TraceKind::NfSleep {
                nf: nf_id.0,
                reason,
            },
        );
    }

    // ------------------------------------------------------------------
    // NF lifecycle (fault injection + recovery mechanism)
    // ------------------------------------------------------------------

    /// The first dead NF on `chain`'s path, if any. O(1) in fault-free
    /// runs (no NF is down), O(path length) during an outage.
    pub fn chain_down_nf(&self, chain: ChainId) -> Option<NfId> {
        if self.down_nfs == 0 {
            return None;
        }
        self.chains
            .path(chain)
            .iter()
            .copied()
            .find(|nf| self.nfs[nf.index()].health == NfHealth::Down)
    }

    /// True when at least one NF is dead.
    pub fn any_nf_down(&self) -> bool {
        self.down_nfs > 0
    }

    /// Kill an NF: every packet it holds (RX/TX rings, outbox, in-flight
    /// batch) is freed back to the mempool as an `NfDown` drop, its
    /// control state is cleared, and its scheduler task is parked. TCP
    /// loss feedback for drained segments is appended to `tcp_out`.
    ///
    /// If the NF is mid-batch on its core (task `Running`, a `BatchDone`
    /// in flight), the task cannot be parked here; the engine blocks it
    /// at the batch boundary, where `finish_batch` is skipped because the
    /// batch was already freed. Returns the number of packets freed.
    pub fn crash_nf(&mut self, nf_id: NfId, now: SimTime, tcp_out: &mut Vec<TcpEvent>) -> usize {
        let idx = nf_id.index();
        debug_assert!(self.nfs[idx].health != NfHealth::Down, "crash of dead NF");
        self.nfs[idx].health = NfHealth::Down;
        self.down_nfs += 1;
        self.nfs[idx].blocked = None;
        self.nfs[idx].yield_flag = false;
        self.nfs[idx].current_batch = None;
        self.nfs[idx].cost_factor = 1;
        self.nfs[idx].pending_by_chain.clear();
        // nfv-lint: allow(hot-alloc) -- crash drain runs once per injected fault
        let mut pids: Vec<nfv_pkt::PktId> = Vec::new();
        while let Some(pid) = self.nfs[idx].rx.dequeue() {
            pids.push(pid);
        }
        while let Some(pid) = self.nfs[idx].tx.dequeue() {
            pids.push(pid);
        }
        pids.extend(self.nfs[idx].outbox.drain(..));
        pids.append(&mut self.nfs[idx].in_progress);
        let freed = pids.len();
        for pid in pids {
            let (flow, chain, seq) = {
                let p = self.mempool.get(pid);
                (p.flow, p.chain, p.seq)
            };
            self.mempool.free(pid);
            self.stats.dropped(flow, chain, DropLocation::NfDown(nf_id));
            self.trace_drop(now, DropCause::NfDown, flow.0, chain.0, nf_id.0);
            self.note_tcp_drop(flow, seq, tcp_out);
        }
        let task = self.nfs[idx].task;
        self.sched.park(task, now);
        self.trace.record(now, TraceKind::NfCrash { nf: nf_id.0 });
        freed
    }

    /// Respawn a dead NF: the process comes back with empty rings,
    /// blocked on its (empty) RX ring until the wakeup thread sees new
    /// pending work. The scheduler task is re-armed in place, keeping the
    /// task-id/NF-id lockstep invariant.
    pub fn restart_nf(&mut self, nf_id: NfId, now: SimTime) {
        let idx = nf_id.index();
        debug_assert_eq!(self.nfs[idx].health, NfHealth::Down, "restart of live NF");
        self.nfs[idx].health = NfHealth::Up;
        self.down_nfs -= 1;
        self.nfs[idx].cost_factor = 1;
        self.nfs[idx].last_ppp = Duration::ZERO;
        self.nfs[idx].blocked = Some(BlockReason::EmptyRx);
        self.trace.record(now, TraceKind::NfRestart { nf: nf_id.0 });
    }

    /// Wedge an NF: it stays schedulable but stops making progress (see
    /// [`Platform::plan_batch`]'s spin path). The caller wakes it if it
    /// was blocked, so the wedged process visibly burns its core.
    pub fn stall_nf(&mut self, nf_id: NfId) {
        let nf = &mut self.nfs[nf_id.index()];
        debug_assert_eq!(nf.health, NfHealth::Up, "stall of non-running NF");
        nf.health = NfHealth::Stalled;
    }

    // ------------------------------------------------------------------
    // Elastic scaling mechanism (replica spawn / migration / retire)
    // ------------------------------------------------------------------

    /// The base NF an instance stands in for: itself for ordinary NFs,
    /// its `replica_of` for scale-out replicas. Chain-position logic
    /// (suppression, audits) always compares canonical ids.
    pub fn canonical_of(&self, nf: NfId) -> NfId {
        self.nfs[nf.index()].replica_of.unwrap_or(nf)
    }

    /// True when `nf` is a scale-out replica (never named on a chain).
    pub fn is_replica(&self, nf: NfId) -> bool {
        self.nfs[nf.index()].replica_of.is_some()
    }

    /// Live replicas of `base`, in spawn order (empty for unreplicated
    /// NFs).
    pub fn replica_group(&self, base: NfId) -> &[NfId] {
        self.replicas_of.get(&base).map_or(&[], |g| g.as_slice())
    }

    /// Base NFs that currently have at least one live replica.
    pub fn replicated_bases(&self) -> impl Iterator<Item = NfId> + '_ {
        self.replicas_of.keys().copied()
    }

    /// Spawn a replica of `of` on `core`: a fresh NF runtime with the
    /// base's spec (fresh rings, default forward handler — per-flow state
    /// never splits because established flows stay pinned to their
    /// original instance) and a fresh scheduler task, registered at the
    /// end of the NF table so the task-id/NF-id lockstep invariant holds.
    /// The first spawn for a base records the established-flow floor:
    /// every flow minted before it stays on the base.
    pub fn add_replica(&mut self, of: NfId, core: usize, now: SimTime) -> NfId {
        assert!(core < self.cfg.nf_cores, "replica pinned to missing core");
        assert!(
            self.nfs[of.index()].replica_of.is_none(),
            "replica of a replica"
        );
        let nth = self.replica_group(of).len() + 1;
        let mut spec = self.nfs[of.index()].spec.clone();
        spec.core = core;
        spec.name = format!("{}~{nth}", spec.name); // nfv-lint: allow(hot-alloc) -- one-time per scale-out action, not per packet
        let id = self.add_nf_with_handler(spec, Box::new(ForwardAll)); // nfv-lint: allow(hot-alloc) -- one-time per scale-out action, not per packet
        self.trivial_handler[id.index()] = true;
        self.nfs[id.index()].replica_of = Some(of);
        self.replica_floor
            .entry(of)
            .or_insert(self.stats.flows.len() as u32);
        self.replicas_of.entry(of).or_default().push(id);
        self.trace.record(
            now,
            TraceKind::NfScaleOut {
                nf: of.0,
                replica: id.0,
                core: core as u32,
            },
        );
        id
    }

    /// Re-pin an off-CPU NF to `to_core`: park (a no-op if already
    /// blocked), re-home the scheduler task, and leave the NF blocked on
    /// its rings — which move with it untouched — until the wakeup thread
    /// sees its pending work. The caller must not call this for the task
    /// currently running on its core (the engine defers to a batch
    /// boundary); rings, estimator and shares are the engine's to fix up.
    pub fn migrate_nf(&mut self, nf_id: NfId, to_core: usize, now: SimTime) {
        assert!(to_core < self.cfg.nf_cores, "migration to missing core");
        let idx = nf_id.index();
        let from = self.nfs[idx].spec.core;
        debug_assert_ne!(from, to_core, "migration to the same core");
        let task = self.nfs[idx].task;
        let parked = self.sched.park(task, now);
        debug_assert!(parked, "migrate_nf of a Running task");
        self.sched.rehome_task(task, to_core);
        self.nfs[idx].spec.core = to_core;
        // Blocked-on-empty-RX is the wakeup thread's cue to re-admit the
        // NF (on its new core) as soon as it has pending packets.
        self.nfs[idx].blocked = Some(BlockReason::EmptyRx);
        self.nfs[idx].yield_flag = false;
        self.trace.record(
            now,
            TraceKind::NfMigrate {
                nf: nf_id.0,
                from: from as u32,
                to: to_core as u32,
            },
        );
    }

    /// Retire a drained replica (scale-in): remove it from its group so
    /// no further packets route to it, drop its flow pins (those flows
    /// re-shard over the remaining group), and park its task for good.
    /// The instance must be empty — the elastic controller only retires
    /// replicas whose rings and batch are idle, so nothing is dropped.
    ///
    /// The runtime slot is marked `Down` but deliberately *not* counted
    /// in `down_nfs`: replicas never appear on chain paths, so the
    /// dead-chain scan has nothing to find and fault-free runs keep their
    /// O(1) short-circuit.
    pub fn retire_replica(&mut self, replica: NfId, now: SimTime) {
        let idx = replica.index();
        let base = self.nfs[idx].replica_of.expect("retire of a base NF");
        debug_assert!(
            self.nfs[idx].rx.is_empty()
                && self.nfs[idx].tx.is_empty()
                && self.nfs[idx].outbox.is_empty()
                && self.nfs[idx].in_progress.is_empty(),
            "retire of a non-drained replica"
        );
        self.nfs[idx].health = NfHealth::Down;
        self.nfs[idx].blocked = None;
        self.nfs[idx].yield_flag = false;
        self.nfs[idx].pending_by_chain.clear();
        let group = self.replicas_of.get_mut(&base).expect("orphan replica");
        group.retain(|&r| r != replica);
        if group.is_empty() {
            self.replicas_of.remove(&base);
            self.replica_floor.remove(&base);
        }
        self.flow_pins.retain(|_, &mut inst| inst != replica);
        let task = self.nfs[idx].task;
        self.sched.park(task, now);
        self.trace.record(
            now,
            TraceKind::NfScaleIn {
                nf: base.0,
                replica: replica.0,
            },
        );
    }

    /// Route a packet of `flow` bound for chain hop `target` (always a
    /// base NF) to an instance of the target's replica group:
    ///
    /// - no replicas → the base itself (the O(1) fast path for every run
    ///   without elastic scale-out);
    /// - flows older than the group (minted before the first replica
    ///   existed) → the base, always: per-flow state never splits;
    /// - younger flows → RSS-style tuple-hash modulo the instance count,
    ///   pinned on first resolution so a later group-size change cannot
    ///   re-shard an active flow;
    /// - a pin to an instance that has since died falls back to the base
    ///   (without re-pinning, so the instance resumes service on respawn).
    #[inline]
    pub fn resolve_instance(&mut self, target: NfId, flow: FlowId) -> NfId {
        // Fast path kept inlinable: replica-free runs (the default) pay
        // one emptiness branch per resolution, not an outlined call.
        if self.replicas_of.is_empty() {
            return target;
        }
        self.resolve_instance_sharded(target, flow)
    }

    /// Replica-sharding slow path of [`Platform::resolve_instance`].
    fn resolve_instance_sharded(&mut self, target: NfId, flow: FlowId) -> NfId {
        let Some(group) = self.replicas_of.get(&target) else {
            return target;
        };
        if flow.0 < self.replica_floor[&target] {
            return target;
        }
        let inst = match self.flow_pins.get(&(target, flow)) {
            Some(&pinned) => pinned,
            None => {
                let n = group.len() + 1;
                let shard = Self::rss_hash(flow) % n as u64;
                let inst = if shard == 0 {
                    target
                } else {
                    group[shard as usize - 1]
                };
                self.flow_pins.insert((target, flow), inst);
                inst
            }
        };
        if self.nfs[inst.index()].health == NfHealth::Down {
            return target;
        }
        inst
    }

    /// FNV-1a over the flow key — the sim's stand-in for an RSS tuple
    /// hash (a flow id is minted per distinct 5-tuple). Cheap,
    /// deterministic, and spreads consecutive ids across shards.
    fn rss_hash(flow: FlowId) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in flow.0.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Age of the packet at the head of `nf`'s RX ring (how long it has
    /// been queued) — the backpressure queuing-time input.
    pub fn rx_head_age(&self, nf_id: NfId, now: SimTime) -> Option<Duration> {
        let pid = self.nfs[nf_id.index()].rx.peek()?;
        Some(now.since(self.mempool.get(pid).enqueued_at))
    }

    /// Write `cpu.shares` for an NF's cgroup, returning the sysfs-write
    /// cost (zero when unchanged).
    pub fn set_nf_shares(&mut self, nf_id: NfId, shares: u64) -> Duration {
        let task = self.nfs[nf_id.index()].task;
        self.cgroups.set_shares(&mut self.sched, task, shares)
    }

    /// Close the per-second measurement interval on all meters.
    pub fn roll_meters(&mut self, now: SimTime) {
        self.stats.roll(now);
        for nf in &mut self.nfs {
            nf.processed_meter.roll(now);
            nf.wasted_meter.roll(now);
        }
    }

    /// Invariant: every live mempool packet is accounted for in exactly one
    /// place (a ring, an outbox, or an executing batch). Used by tests.
    pub fn packets_accounted(&self) -> bool {
        let held: usize = self
            .nfs
            .iter()
            .map(|nf| nf.rx.len() + nf.tx.len() + nf.outbox.len() + nf.in_progress.len())
            .sum();
        held == self.mempool.in_use()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_pkt::FiveTuple;

    /// The single-core config every platform unit test runs on. One
    /// fixture instead of a hand-rolled `PlatformConfig` literal per test.
    fn test_cfg() -> PlatformConfig {
        PlatformConfig {
            nf_cores: 1,
            ..Default::default()
        }
    }

    fn mini_platform() -> (Platform, ChainId, FlowId) {
        let mut p = Platform::new(test_cfg());
        let a = p.add_nf(NfSpec::new("a", 0, 100));
        let b = p.add_nf(NfSpec::new("b", 0, 200));
        let chain = p.install_chain(&[a, b]);
        let flow = p.install_flow(FiveTuple::synthetic(0, Proto::Udp), chain);
        (p, chain, flow)
    }

    fn inject(p: &mut Platform, n: u64, now: SimTime) {
        for seq in 0..n {
            p.nic.deliver(WireFrame {
                tuple: FiveTuple::synthetic(0, Proto::Udp),
                size: 64,
                seq,
                cost_class: 0,
                ecn: Ecn::NotEct,
                arrival: now,
            });
        }
    }

    #[test]
    fn rx_poll_classifies_and_enqueues() {
        let (mut p, _, _) = mini_platform();
        inject(&mut p, 10, SimTime::ZERO);
        let mut tcp = Vec::new();
        p.rx_poll(SimTime::ZERO, &mut |_, _, _| true, &mut tcp);
        assert_eq!(p.nfs[0].pending(), 10);
        assert_eq!(p.nfs[0].arrivals, 10);
        assert!(tcp.is_empty());
        assert!(p.packets_accounted());
    }

    #[test]
    fn admission_denial_drops_at_entry() {
        let (mut p, chain, flow) = mini_platform();
        inject(&mut p, 5, SimTime::ZERO);
        let mut tcp = Vec::new();
        p.rx_poll(SimTime::ZERO, &mut |_, _, _| false, &mut tcp);
        assert_eq!(p.nfs[0].pending(), 0);
        assert_eq!(p.stats.entry_throttle_drops, 5);
        assert_eq!(p.stats.chains[chain.index()].entry_drops, 5);
        assert_eq!(p.stats.flows[flow.index()].entry_drops, 5);
        assert_eq!(p.mempool.in_use(), 0);
    }

    #[test]
    fn batch_plan_and_finish_move_packets_through_chain() {
        let (mut p, _, flow) = mini_platform();
        inject(&mut p, 40, SimTime::ZERO);
        let mut tcp = Vec::new();
        p.rx_poll(SimTime::ZERO, &mut |_, _, _| true, &mut tcp);
        // NF a: one batch of 32
        let plan = p.plan_batch(NfId(0));
        match plan {
            BatchPlan::Run { duration, n } => {
                assert_eq!(n, 32);
                // 32 * 100 cycles at 2.6GHz ≈ 1231ns
                assert_eq!(duration, Duration::from_nanos(1231));
            }
            other => panic!("unexpected {other:?}"),
        }
        let fx = p.finish_batch(NfId(0), SimTime::from_micros(2));
        assert!(fx.block.is_none());
        assert_eq!(p.nfs[0].tx.len(), 32);
        assert_eq!(p.nfs[0].processed, 32);
        // TX thread moves them to NF b
        let mut woken = Vec::new();
        p.tx_drain(
            SimTime::from_micros(3),
            &mut |_| false,
            &mut tcp,
            &mut woken,
        );
        assert_eq!(p.nfs[1].pending(), 32);
        // NF b processes and the packets exit
        p.plan_batch(NfId(1));
        p.finish_batch(NfId(1), SimTime::from_micros(5));
        p.tx_drain(
            SimTime::from_micros(6),
            &mut |_| false,
            &mut tcp,
            &mut woken,
        );
        assert_eq!(p.stats.flows[flow.index()].delivered, 32);
        assert_eq!(p.nic.tx_frames, 32);
        assert!(p.packets_accounted());
    }

    #[test]
    fn empty_rx_blocks() {
        let (mut p, _, _) = mini_platform();
        assert_eq!(
            p.plan_batch(NfId(0)),
            BatchPlan::Block(BlockReason::EmptyRx)
        );
    }

    #[test]
    fn yield_flag_consumed_once() {
        let (mut p, _, _) = mini_platform();
        inject(&mut p, 5, SimTime::ZERO);
        let mut tcp = Vec::new();
        p.rx_poll(SimTime::ZERO, &mut |_, _, _| true, &mut tcp);
        p.nfs[0].yield_flag = true;
        assert_eq!(
            p.plan_batch(NfId(0)),
            BatchPlan::Block(BlockReason::Backpressure)
        );
        // Flag consumed: next plan runs normally.
        assert!(matches!(p.plan_batch(NfId(0)), BatchPlan::Run { n: 5, .. }));
    }

    #[test]
    fn downstream_ring_overflow_counts_wasted_work() {
        let mut p = Platform::new(test_cfg());
        let a = p.add_nf(NfSpec::new("a", 0, 100));
        let b = p.add_nf(NfSpec::new("b", 0, 100).with_rings(16, 16));
        let chain = p.install_chain(&[a, b]);
        p.install_flow(FiveTuple::synthetic(0, Proto::Udp), chain);
        inject(&mut p, 64, SimTime::ZERO);
        let mut tcp = Vec::new();
        let mut woken = Vec::new();
        p.rx_poll(SimTime::ZERO, &mut |_, _, _| true, &mut tcp);
        // a processes two batches of 32
        for _ in 0..2 {
            assert!(matches!(p.plan_batch(a), BatchPlan::Run { .. }));
            p.finish_batch(a, SimTime::from_micros(1));
        }
        // all 64 in a's tx; b's ring holds 16 → 48 wasted
        p.tx_drain(
            SimTime::from_micros(2),
            &mut |_| false,
            &mut tcp,
            &mut woken,
        );
        assert_eq!(p.nfs[a.index()].wasted_drops, 48);
        assert_eq!(p.nfs[b.index()].pending(), 16);
        assert!(p.packets_accounted());
    }

    #[test]
    fn tx_full_spills_to_outbox_and_blocks() {
        let mut p = Platform::new(test_cfg());
        let a = p.add_nf(NfSpec::new("a", 0, 100).with_rings(4096, 16));
        let b = p.add_nf(NfSpec::new("b", 0, 100));
        let chain = p.install_chain(&[a, b]);
        p.install_flow(FiveTuple::synthetic(0, Proto::Udp), chain);
        inject(&mut p, 32, SimTime::ZERO);
        let mut tcp = Vec::new();
        let mut woken = Vec::new();
        p.rx_poll(SimTime::ZERO, &mut |_, _, _| true, &mut tcp);
        p.plan_batch(a);
        p.finish_batch(a, SimTime::from_micros(1));
        // 16 fit in tx, 16 spilled
        assert_eq!(p.nfs[a.index()].tx.len(), 16);
        assert_eq!(p.nfs[a.index()].outbox.len(), 16);
        // next plan: outbox still stuck (tx full) → block TxFull
        assert_eq!(p.plan_batch(a), BatchPlan::Block(BlockReason::TxFull));
        p.mark_blocked(a, BlockReason::TxFull, SimTime::from_micros(1));
        // TX thread drains and signals the NF can resume
        p.tx_drain(
            SimTime::from_micros(2),
            &mut |_| false,
            &mut tcp,
            &mut woken,
        );
        assert_eq!(woken, vec![a]);
        assert!(p.packets_accounted());
    }

    #[test]
    fn handler_drop_frees_packet() {
        struct DropAll;
        impl PacketHandler for DropAll {
            fn handle(&mut self, _p: &mut Packet, _now: SimTime) -> NfAction {
                NfAction::Drop
            }
        }
        let mut p = Platform::new(test_cfg());
        let a = p.add_nf_with_handler(NfSpec::new("fw", 0, 100), Box::new(DropAll));
        let chain = p.install_chain(&[a]);
        let flow = p.install_flow(FiveTuple::synthetic(0, Proto::Udp), chain);
        inject(&mut p, 8, SimTime::ZERO);
        let mut tcp = Vec::new();
        p.rx_poll(SimTime::ZERO, &mut |_, _, _| true, &mut tcp);
        p.plan_batch(a);
        p.finish_batch(a, SimTime::from_micros(1));
        assert_eq!(p.mempool.in_use(), 0);
        assert_eq!(p.stats.flows[flow.index()].dropped, 8);
        assert_eq!(p.nfs[a.index()].processed, 8);
    }

    #[test]
    fn tcp_flow_generates_feedback_events() {
        let mut p = Platform::new(test_cfg());
        let a = p.add_nf(NfSpec::new("a", 0, 100));
        let chain = p.install_chain(&[a]);
        let flow = p.install_flow(FiveTuple::synthetic(0, Proto::Tcp), chain);
        for seq in 0..3u64 {
            p.nic.deliver(WireFrame {
                tuple: FiveTuple::synthetic(0, Proto::Tcp),
                size: 1500,
                seq,
                cost_class: 0,
                ecn: Ecn::Ect0,
                arrival: SimTime::ZERO,
            });
        }
        let mut tcp = Vec::new();
        let mut woken = Vec::new();
        p.rx_poll(SimTime::ZERO, &mut |_, _, _| true, &mut tcp);
        p.plan_batch(a);
        p.finish_batch(a, SimTime::from_micros(1));
        p.tx_drain(
            SimTime::from_micros(2),
            &mut |_| false,
            &mut tcp,
            &mut woken,
        );
        assert_eq!(tcp.len(), 3);
        assert!(tcp
            .iter()
            .all(|e| e.flow == flow && e.kind == (TcpEventKind::Delivered { ce: false })));
    }

    #[test]
    fn ecn_marking_applied_between_hops() {
        let (mut p, _, _) = mini_platform();
        // re-install flow as TCP with ECT(0)
        let chain = ChainId(0);
        let flow = p.install_flow(FiveTuple::synthetic(1, Proto::Tcp), chain);
        p.nic.deliver(WireFrame {
            tuple: FiveTuple::synthetic(1, Proto::Tcp),
            size: 1500,
            seq: 0,
            cost_class: 0,
            ecn: Ecn::Ect0,
            arrival: SimTime::ZERO,
        });
        let mut tcp = Vec::new();
        let mut woken = Vec::new();
        p.rx_poll(SimTime::ZERO, &mut |_, _, _| true, &mut tcp);
        p.plan_batch(NfId(0));
        p.finish_batch(NfId(0), SimTime::from_micros(1));
        // mark everything entering NF b
        p.tx_drain(SimTime::from_micros(2), &mut |_| true, &mut tcp, &mut woken);
        p.plan_batch(NfId(1));
        p.finish_batch(NfId(1), SimTime::from_micros(3));
        p.tx_drain(
            SimTime::from_micros(4),
            &mut |_| false,
            &mut tcp,
            &mut woken,
        );
        let delivered: Vec<_> = tcp
            .iter()
            .filter(|e| e.flow == flow && matches!(e.kind, TcpEventKind::Delivered { .. }))
            .collect();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].kind, TcpEventKind::Delivered { ce: true });
    }

    #[test]
    fn sync_io_blocks_until_device_completion() {
        use crate::nf::NfIoSpec;
        let mut p = Platform::new(test_cfg());
        let a = p.add_nf(NfSpec::new("log", 0, 100).with_io(NfIoSpec {
            bytes_per_packet: 64,
            mode: IoMode::Sync,
        }));
        let chain = p.install_chain(&[a]);
        let flow = p.install_flow(FiveTuple::synthetic(0, Proto::Udp), chain);
        p.set_io_flow(flow);
        inject(&mut p, 8, SimTime::ZERO);
        let mut tcp = Vec::new();
        p.rx_poll(SimTime::ZERO, &mut |_, _, _| true, &mut tcp);
        p.plan_batch(a);
        let fx = p.finish_batch(a, SimTime::from_micros(1));
        assert_eq!(fx.block, Some(BlockReason::Io));
        let wake = fx.io_wake_at.unwrap();
        assert!(wake > SimTime::from_micros(100), "includes device latency");
        p.mark_blocked(a, BlockReason::Io, SimTime::from_micros(1));
        let out = p.on_io_complete(a, wake);
        assert!(out.wake);
        assert!(out.next_completion.is_none());
    }

    #[test]
    fn crash_drains_every_held_packet_back_to_the_mempool() {
        let (mut p, _, flow) = mini_platform();
        inject(&mut p, 40, SimTime::ZERO);
        let mut tcp = Vec::new();
        p.rx_poll(SimTime::ZERO, &mut |_, _, _| true, &mut tcp);
        // Put packets in every holding spot of NF a: 8 left in rx, 32
        // mid-batch.
        p.plan_batch(NfId(0));
        assert_eq!(p.nfs[0].in_progress.len(), 32);
        assert_eq!(p.nfs[0].pending(), 8);
        let freed = p.crash_nf(NfId(0), SimTime::from_micros(1), &mut tcp);
        assert_eq!(freed, 40);
        assert_eq!(p.mempool.in_use(), 0);
        assert!(p.packets_accounted());
        assert_eq!(p.stats.nf_down_drops, 40);
        assert_eq!(p.stats.flows[flow.index()].dropped, 40);
        assert!(p.nfs[0].pending_by_chain.is_empty());
        assert!(p.nfs[0].current_batch.is_none());
        assert!(p.any_nf_down());
    }

    #[test]
    fn dead_chain_sheds_at_entry_and_forwarding() {
        let (mut p, chain, flow) = mini_platform();
        inject(&mut p, 4, SimTime::ZERO);
        let mut tcp = Vec::new();
        let mut woken = Vec::new();
        p.rx_poll(SimTime::ZERO, &mut |_, _, _| true, &mut tcp);
        p.plan_batch(NfId(0));
        p.finish_batch(NfId(0), SimTime::from_micros(1));
        // Downstream NF b dies with a's output still in a's TX ring.
        p.crash_nf(NfId(1), SimTime::from_micros(2), &mut tcp);
        assert_eq!(p.chain_down_nf(chain), Some(NfId(1)));
        p.tx_drain(
            SimTime::from_micros(3),
            &mut |_| false,
            &mut tcp,
            &mut woken,
        );
        assert_eq!(
            p.nfs[0].wasted_drops, 4,
            "forwarding into dead NF wastes work"
        );
        // New arrivals for the dead chain are shed at entry, pre-λ.
        inject(&mut p, 4, SimTime::from_micros(4));
        p.rx_poll(SimTime::from_micros(4), &mut |_, _, _| true, &mut tcp);
        assert_eq!(p.nfs[0].pending(), 0);
        assert_eq!(p.nfs[0].arrivals, 4, "shed frames are not offered load");
        assert_eq!(p.stats.nf_down_drops, 8);
        assert_eq!(p.stats.flows[flow.index()].dropped, 8);
        assert_eq!(p.mempool.in_use(), 0);
        // Respawn: traffic flows again.
        p.restart_nf(NfId(1), SimTime::from_micros(5));
        assert!(!p.any_nf_down());
        assert_eq!(p.chain_down_nf(chain), None);
        inject(&mut p, 4, SimTime::from_micros(6));
        p.rx_poll(SimTime::from_micros(6), &mut |_, _, _| true, &mut tcp);
        assert_eq!(p.nfs[0].pending(), 4);
    }

    #[test]
    fn dead_nf_cannot_be_woken() {
        let (mut p, _, _) = mini_platform();
        let mut tcp = Vec::new();
        p.crash_nf(NfId(0), SimTime::ZERO, &mut tcp);
        assert!(!p.wake_nf(NfId(0), SimTime::from_micros(1)));
        p.restart_nf(NfId(0), SimTime::from_micros(2));
        assert!(
            p.wake_nf(NfId(0), SimTime::from_micros(3)),
            "blocked EmptyRx"
        );
    }

    #[test]
    fn stalled_nf_spins_without_progress() {
        let (mut p, _, _) = mini_platform();
        inject(&mut p, 8, SimTime::ZERO);
        let mut tcp = Vec::new();
        p.rx_poll(SimTime::ZERO, &mut |_, _, _| true, &mut tcp);
        p.stall_nf(NfId(0));
        let plan = p.plan_batch(NfId(0));
        match plan {
            BatchPlan::Run { duration, n } => {
                assert_eq!(n, 0, "no packets dequeued");
                assert!(duration > Duration::ZERO, "but CPU time is burned");
            }
            other => panic!("unexpected {other:?}"),
        }
        p.finish_batch(NfId(0), SimTime::from_micros(1));
        assert_eq!(p.nfs[0].processed, 0, "progress counter stays flat");
        assert_eq!(p.nfs[0].pending(), 8, "backlog untouched");
        assert!(p.packets_accounted());
    }

    #[test]
    fn slowdown_factor_multiplies_batch_cost() {
        let (mut p, _, _) = mini_platform();
        inject(&mut p, 8, SimTime::ZERO);
        let mut tcp = Vec::new();
        p.rx_poll(SimTime::ZERO, &mut |_, _, _| true, &mut tcp);
        p.nfs[0].cost_factor = 4;
        let BatchPlan::Run { duration: slow, .. } = p.plan_batch(NfId(0)) else {
            panic!("expected a batch");
        };
        p.finish_batch(NfId(0), SimTime::from_micros(1));
        let mut woken = Vec::new();
        p.tx_drain(
            SimTime::from_micros(2),
            &mut |_| false,
            &mut tcp,
            &mut woken,
        );
        p.nfs[1].cost_factor = 1;
        let BatchPlan::Run { duration: base, .. } = p.plan_batch(NfId(1)) else {
            panic!("expected a batch");
        };
        // NF a costs 100 cycles ×4, NF b costs 200 cycles ×1 → 2:1
        // (±1 ns for the independent cycles→ns rounding of each batch).
        let diff = slow.as_nanos() as i64 - 2 * base.as_nanos() as i64;
        assert!(diff.abs() <= 1, "slow={slow} base={base}");
    }

    /// Two-core fixture for the elastic-scaling mechanism tests.
    fn elastic_platform() -> (Platform, ChainId, NfId, NfId, FlowId) {
        let mut p = Platform::new(PlatformConfig {
            nf_cores: 2,
            ..Default::default()
        });
        let a = p.add_nf(NfSpec::new("a", 0, 100));
        let b = p.add_nf(NfSpec::new("b", 0, 200));
        let chain = p.install_chain(&[a, b]);
        let flow = p.install_flow(FiveTuple::synthetic(0, Proto::Udp), chain);
        (p, chain, a, b, flow)
    }

    #[test]
    fn established_flows_stay_pinned_to_base_after_scale_out() {
        let (mut p, _, a, b, old_flow) = elastic_platform();
        let r = p.add_replica(b, 1, SimTime::ZERO);
        assert_eq!(p.canonical_of(r), b);
        assert_eq!(p.canonical_of(b), b);
        assert!(p.is_replica(r) && !p.is_replica(b));
        assert_eq!(p.replica_group(b), &[r]);
        assert_eq!(p.replicated_bases().collect::<Vec<_>>(), vec![b]);
        assert_eq!(p.nfs[r.index()].spec.core, 1);
        assert_eq!(p.nfs[r.index()].spec.name, "b~1");
        // The flow minted before the replica existed keeps its instance —
        // per-flow state never splits.
        assert_eq!(p.resolve_instance(b, old_flow), b);
        // Unreplicated NFs resolve to themselves.
        assert_eq!(p.resolve_instance(a, old_flow), a);
    }

    #[test]
    fn new_flows_shard_across_the_group_with_stable_pins() {
        let (mut p, chain, _, b, _) = elastic_platform();
        let r = p.add_replica(b, 1, SimTime::ZERO);
        let mut hit = std::collections::BTreeSet::new();
        for i in 1..=8 {
            let f = p.install_flow(FiveTuple::synthetic(i, Proto::Udp), chain);
            let inst = p.resolve_instance(b, f);
            assert_eq!(p.resolve_instance(b, f), inst, "pin is stable");
            hit.insert(inst);
        }
        assert!(
            hit.contains(&b) && hit.contains(&r),
            "tuple-hash sharding uses both instances: {hit:?}"
        );
    }

    #[test]
    fn down_replica_falls_back_to_base_without_losing_the_pin() {
        let (mut p, chain, _, b, _) = elastic_platform();
        let r = p.add_replica(b, 1, SimTime::ZERO);
        // Find a flow sharded onto the replica.
        let mut on_replica = None;
        for i in 1..=16 {
            let f = p.install_flow(FiveTuple::synthetic(i, Proto::Udp), chain);
            if p.resolve_instance(b, f) == r {
                on_replica = Some(f);
                break;
            }
        }
        let f = on_replica.expect("some flow shards to the replica");
        let mut tcp = Vec::new();
        p.crash_nf(r, SimTime::ZERO, &mut tcp);
        assert_eq!(p.resolve_instance(b, f), b, "dead instance: serve at base");
        p.restart_nf(r, SimTime::from_micros(1));
        assert_eq!(p.resolve_instance(b, f), r, "pin survives the outage");
    }

    #[test]
    fn retire_replica_unroutes_it_and_drops_its_pins() {
        let (mut p, chain, _, b, _) = elastic_platform();
        let r = p.add_replica(b, 1, SimTime::ZERO);
        for i in 1..=8 {
            let f = p.install_flow(FiveTuple::synthetic(i, Proto::Udp), chain);
            p.resolve_instance(b, f);
        }
        assert!(!p.flow_pins.is_empty());
        p.retire_replica(r, SimTime::from_micros(1));
        assert!(p.replica_group(b).is_empty());
        assert!(
            p.flow_pins.values().all(|&inst| inst != r),
            "no pin may survive to the retired instance"
        );
        assert_eq!(p.nfs[r.index()].health, NfHealth::Down);
        assert!(!p.any_nf_down(), "a retired replica is not a fault");
        for i in 1..=8 {
            // Flow ids are mint-ordered; the pins are gone and so is the
            // group, so everything lands on the base again.
            let f = FlowId(1 + i);
            assert_eq!(p.resolve_instance(b, f), b);
        }
    }

    #[test]
    fn migrate_nf_rehomes_the_blocked_task_and_keeps_rings() {
        let (mut p, _, a, b, _) = elastic_platform();
        // Park a's output in b's RX ring, then migrate b to core 1.
        inject(&mut p, 8, SimTime::ZERO);
        let mut tcp = Vec::new();
        let mut woken = Vec::new();
        p.rx_poll(SimTime::ZERO, &mut |_, _, _| true, &mut tcp);
        p.plan_batch(a);
        p.finish_batch(a, SimTime::from_micros(1));
        p.tx_drain(
            SimTime::from_micros(2),
            &mut |_| false,
            &mut tcp,
            &mut woken,
        );
        assert_eq!(p.nfs[b.index()].pending(), 8);
        p.migrate_nf(b, 1, SimTime::from_micros(3));
        assert_eq!(p.core_of(b), 1);
        assert_eq!(p.sched.task(p.nfs[b.index()].task).core, 1);
        assert_eq!(p.nfs[b.index()].blocked, Some(BlockReason::EmptyRx));
        assert_eq!(p.nfs[b.index()].pending(), 8, "backlog moves with it");
        // The wakeup path admits it on the new core.
        assert!(p.wake_nf(b, SimTime::from_micros(4)));
        assert!(matches!(p.plan_batch(b), BatchPlan::Run { n: 8, .. }));
    }

    #[test]
    fn async_io_overlaps_until_both_buffers_full() {
        use crate::nf::NfIoSpec;
        let mut p = Platform::new(test_cfg());
        // Buffer = 4 packets worth; batch of 32 fills both buffers fast.
        let a = p.add_nf(NfSpec::new("log", 0, 100).with_io(NfIoSpec {
            bytes_per_packet: 64,
            mode: IoMode::Async { buf_size: 256 },
        }));
        let chain = p.install_chain(&[a]);
        let flow = p.install_flow(FiveTuple::synthetic(0, Proto::Udp), chain);
        p.set_io_flow(flow);
        inject(&mut p, 8, SimTime::ZERO);
        let mut tcp = Vec::new();
        p.rx_poll(SimTime::ZERO, &mut |_, _, _| true, &mut tcp);
        p.plan_batch(a);
        let fx = p.finish_batch(a, SimTime::from_micros(1));
        // 8 pkts × 64B = 512B = both buffers: one flush + one blocked
        assert_eq!(fx.flush_completions.len(), 1);
        assert_eq!(fx.block, Some(BlockReason::Io));
        p.mark_blocked(a, BlockReason::Io, SimTime::from_micros(1));
        let out = p.on_io_complete(a, fx.flush_completions[0]);
        assert!(out.wake);
        assert!(out.next_completion.is_some(), "queued buffer flushes next");
    }
}
