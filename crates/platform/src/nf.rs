//! Network function runtime state.
//!
//! Each NF is a separate process in the paper (scheduled by the OS); here
//! it is an [`NfRuntime`]: its RX/TX descriptor rings, its `libnf`-side
//! control flags (the shared-memory *yield* flag the manager sets to make
//! the NF relinquish the CPU at the next batch boundary), per-chain pending
//! counts used by the wakeup/backpressure subsystem, the double-buffered
//! async I/O engine, and counters.
//!
//! The *functional* behaviour of an NF (forward, drop, rewrite) is a
//! [`PacketHandler`]; its *temporal* behaviour is a [`CostModel`]. The
//! split lets experiments dial per-packet costs (the paper's 120/270/550
//! cycle NFs, or variable per-packet costs) independently of what the NF
//! does to the packet.

use nfv_des::Duration;
use nfv_io::DoubleBuffer;
use nfv_pkt::{ChainId, Packet, Ring};
use nfv_sched::TaskId;
use std::collections::VecDeque;

/// Per-chain pending-packet counts, kept as a `ChainId`-sorted vec.
///
/// This sits on the per-packet hot path (`note_pending`/`note_dequeued`
/// run once per RX enqueue/dequeue), and an NF sees at most a handful of
/// distinct chains, so a binary-searched vec beats a `BTreeMap`'s node
/// allocations — while iteration order stays identical (ascending
/// `ChainId`), which the backpressure evaluation and suppression checks
/// rely on for determinism. The backing vec's capacity is retained across
/// drain/refill cycles, so steady state allocates nothing.
#[derive(Debug, Default)]
pub struct ChainCounts {
    counts: Vec<(ChainId, u32)>,
}

impl ChainCounts {
    /// Increment the count for `chain` (inserting it at its sorted slot).
    pub fn add(&mut self, chain: ChainId) {
        match self.counts.binary_search_by_key(&chain, |&(c, _)| c) {
            Ok(i) => self.counts[i].1 += 1,
            Err(i) => self.counts.insert(i, (chain, 1)),
        }
    }

    /// Decrement the count for `chain`, dropping the entry at zero.
    /// Returns `false` when the chain has no pending count.
    #[must_use]
    pub fn sub(&mut self, chain: ChainId) -> bool {
        let Ok(i) = self.counts.binary_search_by_key(&chain, |&(c, _)| c) else {
            return false;
        };
        self.counts[i].1 -= 1;
        if self.counts[i].1 == 0 {
            self.counts.remove(i);
        }
        true
    }

    /// Pending count for `chain`, if any.
    pub fn get(&self, chain: ChainId) -> Option<u32> {
        self.counts
            .binary_search_by_key(&chain, |&(c, _)| c)
            .ok()
            .map(|i| self.counts[i].1)
    }

    /// Chains with a nonzero pending count, in ascending `ChainId` order.
    pub fn keys(&self) -> impl Iterator<Item = &ChainId> {
        self.counts.iter().map(|(c, _)| c)
    }

    /// True when no chain has pending packets.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Drop every count (capacity is kept).
    pub fn clear(&mut self) {
        self.counts.clear();
    }
}

/// Per-packet CPU cost of an NF.
#[derive(Debug, Clone)]
pub enum CostModel {
    /// Every packet costs the same number of cycles.
    Fixed(u64),
    /// Cost depends on the packet's `cost_class` (Fig 10's variable
    /// per-packet cost): class `i` costs `table[i % table.len()]` cycles.
    PerClass(Vec<u64>),
}

impl CostModel {
    /// Cycles to process one packet of the given class.
    pub fn cycles(&self, class: u8) -> u64 {
        match self {
            CostModel::Fixed(c) => *c,
            CostModel::PerClass(t) => t[class as usize % t.len()],
        }
    }

    /// Mean cycles across classes (for capacity estimates in harnesses).
    pub fn mean_cycles(&self) -> u64 {
        match self {
            CostModel::Fixed(c) => *c,
            CostModel::PerClass(t) => t.iter().sum::<u64>() / t.len() as u64,
        }
    }
}

/// How an NF performs storage writes.
#[derive(Debug, Clone, Copy)]
pub enum IoMode {
    /// Blocking write per processed batch (the non-NFVnice baseline).
    Sync,
    /// `libnf`-style asynchronous writes with double buffering; each of
    /// the two buffers holds `buf_size` bytes.
    Async {
        /// Capacity of each buffer in bytes.
        buf_size: u64,
    },
}

/// Storage-I/O profile of an NF (only packets of flows registered as
/// I/O-active trigger writes — Fig 14 logs just one of the two flows).
#[derive(Debug, Clone, Copy)]
pub struct NfIoSpec {
    /// Bytes logged per packet.
    pub bytes_per_packet: u64,
    /// Write mode.
    pub mode: IoMode,
}

/// Static configuration of an NF.
#[derive(Debug, Clone)]
pub struct NfSpec {
    /// Name for reports.
    pub name: String,
    /// NF core index this NF is pinned to (0-based over *NF* cores; manager
    /// threads run on their own dedicated cores outside this range).
    pub core: usize,
    /// Per-packet processing cost.
    pub cost: CostModel,
    /// RX ring capacity.
    pub rx_capacity: usize,
    /// TX ring capacity.
    pub tx_capacity: usize,
    /// Optional storage-I/O profile.
    pub io: Option<NfIoSpec>,
    /// Operator priority multiplier in the rate-cost share formula.
    pub priority: f64,
}

impl NfSpec {
    /// Default ring size used throughout the paper-scale experiments
    /// (OpenNetVM's NF queue ring size).
    pub const DEFAULT_RING: usize = 16_384;

    /// An NF with fixed per-packet cost and default rings.
    pub fn new(name: impl Into<String>, core: usize, cycles_per_packet: u64) -> Self {
        NfSpec {
            name: name.into(),
            core,
            cost: CostModel::Fixed(cycles_per_packet),
            rx_capacity: Self::DEFAULT_RING,
            tx_capacity: Self::DEFAULT_RING,
            io: None,
            priority: 1.0,
        }
    }

    /// Replace the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Attach a storage I/O profile.
    pub fn with_io(mut self, io: NfIoSpec) -> Self {
        self.io = io.into();
        self
    }

    /// Set the operator priority multiplier.
    pub fn with_priority(mut self, p: f64) -> Self {
        self.priority = p;
        self
    }

    /// Set RX/TX ring capacities.
    pub fn with_rings(mut self, rx: usize, tx: usize) -> Self {
        self.rx_capacity = rx;
        self.tx_capacity = tx;
        self
    }
}

/// What an NF does with a packet, decided by its [`PacketHandler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NfAction {
    /// Pass the packet down the chain (or out of the box at the last hop).
    Forward,
    /// Drop it (a *functional* drop — firewall deny, not congestion).
    Drop,
}

/// Functional behaviour of an NF. Implementations may mutate the packet
/// (NAT rewrites, DPI tagging) and keep their own state; `now` is the
/// simulated processing instant (rate limiters and timeout-based NFs need
/// a clock).
pub trait PacketHandler {
    /// Process one packet at time `now`.
    fn handle(&mut self, pkt: &mut Packet, now: nfv_des::SimTime) -> NfAction;
}

/// The default NF body: a bridge that forwards everything.
#[derive(Debug, Default)]
pub struct ForwardAll;

impl PacketHandler for ForwardAll {
    fn handle(&mut self, _pkt: &mut Packet, _now: nfv_des::SimTime) -> NfAction {
        NfAction::Forward
    }
}

/// Fault-injected process health of an NF.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NfHealth {
    /// Alive and processing normally.
    Up,
    /// Wedged: the process stays schedulable and burns CPU time but makes
    /// no forward progress (no dequeues, no processed packets). Detected
    /// by the manager's liveness watchdog via progress counters.
    Stalled,
    /// Dead: queues drained back to the mempool, scheduler task parked.
    Down,
}

/// Why an NF is blocked on its semaphore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// RX ring empty: nothing to do.
    EmptyRx,
    /// Manager directed the NF to sleep (backpressure yield flag).
    Backpressure,
    /// Local backpressure: the NF's TX ring is full.
    TxFull,
    /// Waiting for a storage flush (both I/O buffers busy, or a blocking
    /// synchronous write).
    Io,
}

/// Dynamic state and counters of one NF.
#[derive(Debug)]
pub struct NfRuntime {
    /// Static configuration.
    pub spec: NfSpec,
    /// OS-scheduler task backing this NF process.
    pub task: TaskId,
    /// Receive ring (filled by the manager's RX/TX threads).
    pub rx: Ring,
    /// Transmit ring (drained by the manager's TX threads).
    pub tx: Ring,
    /// Shared-memory flag: relinquish the CPU at the next batch boundary.
    pub yield_flag: bool,
    /// Present iff the NF process is blocked on its semaphore.
    pub blocked: Option<BlockReason>,
    /// Pending RX packets per chain — lets the wakeup thread decide in
    /// O(#chains) whether everything queued here is throttled.
    pub pending_by_chain: ChainCounts,
    /// Packets processed (time already charged) but not yet pushed to the
    /// TX ring because it filled: flushed before the next batch.
    pub outbox: VecDeque<nfv_pkt::PktId>,
    /// Packets dequeued for the batch currently executing on the CPU.
    pub in_progress: Vec<nfv_pkt::PktId>,
    /// `(duration, n)` of the batch currently executing.
    pub current_batch: Option<(Duration, usize)>,
    /// Double-buffer engine when `spec.io` is `Async`.
    pub dbuf: Option<DoubleBuffer>,
    /// Fault-injected process health.
    pub health: NfHealth,
    /// Transient per-packet cost multiplier (slowdown fault; 1 = nominal).
    pub cost_factor: u64,
    /// `Some(base)` when this instance is an elastic scale-out replica of
    /// `base`. Replicas never appear on chain paths — the enqueue sites
    /// resolve through the platform's replica map — and chain-position
    /// logic (suppression, down-chain shedding) judges them by their base.
    pub replica_of: Option<nfv_pkt::NfId>,

    // ---- counters ----
    /// Packets fully processed by this NF.
    pub processed: u64,
    /// Packets this NF processed that were then dropped at the next hop's
    /// full ring — the paper's "wasted work" metric (Table 3).
    pub wasted_drops: u64,
    /// Enqueue *attempts* into this NF's RX ring (its packet arrival rate
    /// λ for the load estimator).
    pub arrivals: u64,
    /// Most recent observed per-packet processing time, sampled by the
    /// monitor every 1 ms into its 100 ms median window.
    pub last_ppp: Duration,
    /// Per-second service rate (packets processed — includes work later
    /// wasted downstream, the paper's "Svc. rate" column).
    pub processed_meter: nfv_des::RateMeter,
    /// Per-second wasted-work drop rate (Table 3's rows).
    pub wasted_meter: nfv_des::RateMeter,
}

impl NfRuntime {
    /// Fresh runtime for `spec`, backed by scheduler task `task`.
    pub fn new(spec: NfSpec, task: TaskId) -> Self {
        let dbuf = match spec.io {
            Some(NfIoSpec {
                mode: IoMode::Async { buf_size },
                ..
            }) => Some(DoubleBuffer::new(buf_size)),
            _ => None,
        };
        let rx = Ring::new(spec.rx_capacity);
        let tx = Ring::new(spec.tx_capacity);
        NfRuntime {
            spec,
            task,
            rx,
            tx,
            yield_flag: false,
            blocked: Some(BlockReason::EmptyRx),
            pending_by_chain: ChainCounts::default(),
            outbox: VecDeque::new(),
            in_progress: Vec::new(), // nfv-lint: allow(hot-alloc) -- empty vec: no allocation; one-time per NF registration
            current_batch: None,
            dbuf,
            health: NfHealth::Up,
            cost_factor: 1,
            replica_of: None,
            processed: 0,
            wasted_drops: 0,
            arrivals: 0,
            last_ppp: Duration::ZERO,
            processed_meter: nfv_des::RateMeter::new(),
            wasted_meter: nfv_des::RateMeter::new(),
        }
    }

    /// Record a packet of `chain` entering the RX ring. Callers must have
    /// already counted the arrival attempt via [`NfRuntime::note_arrival`].
    pub fn note_pending(&mut self, chain: ChainId) {
        self.pending_by_chain.add(chain);
    }

    /// Record an enqueue *attempt* into the RX ring — successful or not.
    /// This is the NF's offered load λ; counting only successes would make
    /// an overloaded NF's measured load deflate to its service rate and
    /// skew the rate-cost share computation.
    pub fn note_arrival(&mut self) {
        self.arrivals += 1;
    }

    /// Record a packet of `chain` leaving the RX ring. Returns `false`
    /// when no pending count exists for the chain — an accounting desync
    /// the caller surfaces as a diagnosable invariant violation (the
    /// counters are left untouched rather than underflowing or aborting
    /// the sim).
    #[must_use]
    pub fn note_dequeued(&mut self, chain: ChainId) -> bool {
        self.pending_by_chain.sub(chain)
    }

    /// True when the NF process is alive (up or wedged — a stalled NF
    /// still occupies its task; only a dead one is gone).
    pub fn is_up(&self) -> bool {
        self.health != NfHealth::Down
    }

    /// True when every packet waiting in the RX ring belongs to a chain in
    /// `throttled` (vacuously false when nothing is pending — an idle NF is
    /// not "fully throttled", it is just idle).
    pub fn fully_throttled(&self, throttled: impl Fn(ChainId) -> bool) -> bool {
        !self.pending_by_chain.is_empty() && self.pending_by_chain.keys().all(|&c| throttled(c))
    }

    /// Packets pending in the RX ring.
    pub fn pending(&self) -> usize {
        self.rx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_pkt::PktId;

    #[test]
    fn cost_model_variants() {
        assert_eq!(CostModel::Fixed(250).cycles(7), 250);
        let per = CostModel::PerClass(vec![120, 270, 550]);
        assert_eq!(per.cycles(0), 120);
        assert_eq!(per.cycles(2), 550);
        assert_eq!(per.cycles(3), 120); // wraps
        assert_eq!(per.mean_cycles(), (120 + 270 + 550) / 3);
    }

    #[test]
    fn spec_builder() {
        let s = NfSpec::new("fw", 1, 500)
            .with_priority(2.0)
            .with_rings(128, 64);
        assert_eq!(s.core, 1);
        assert_eq!(s.rx_capacity, 128);
        assert_eq!(s.tx_capacity, 64);
        assert_eq!(s.priority, 2.0);
        assert!(s.io.is_none());
    }

    #[test]
    fn runtime_starts_blocked_on_empty_rx() {
        let rt = NfRuntime::new(NfSpec::new("a", 0, 100), TaskId(0));
        assert_eq!(rt.blocked, Some(BlockReason::EmptyRx));
        assert_eq!(rt.pending(), 0);
        assert!(rt.dbuf.is_none());
    }

    #[test]
    fn async_io_spec_creates_double_buffer() {
        let spec = NfSpec::new("log", 0, 100).with_io(NfIoSpec {
            bytes_per_packet: 64,
            mode: IoMode::Async { buf_size: 4096 },
        });
        let rt = NfRuntime::new(spec, TaskId(0));
        assert!(rt.dbuf.is_some());
    }

    #[test]
    fn pending_by_chain_tracks_counts() {
        let mut rt = NfRuntime::new(NfSpec::new("a", 0, 100), TaskId(0));
        for _ in 0..3 {
            rt.note_arrival();
        }
        rt.note_pending(ChainId(1));
        rt.note_pending(ChainId(1));
        rt.note_pending(ChainId(2));
        assert_eq!(rt.arrivals, 3);
        assert!(!rt.fully_throttled(|c| c == ChainId(1)));
        assert!(rt.note_dequeued(ChainId(2)));
        assert!(rt.fully_throttled(|c| c == ChainId(1)));
        assert!(rt.note_dequeued(ChainId(1)));
        assert!(rt.note_dequeued(ChainId(1)));
        assert!(rt.pending_by_chain.is_empty());
        // idle NF is not fully throttled
        assert!(!rt.fully_throttled(|_| true));
    }

    #[test]
    fn dequeue_without_pending_reports_instead_of_panicking() {
        let mut rt = NfRuntime::new(NfSpec::new("a", 0, 100), TaskId(0));
        assert!(
            !rt.note_dequeued(ChainId(7)),
            "desync must surface, not abort"
        );
        rt.note_pending(ChainId(1));
        assert!(!rt.note_dequeued(ChainId(2)), "wrong chain is a desync too");
        // the existing count is untouched
        assert_eq!(rt.pending_by_chain.get(ChainId(1)), Some(1));
    }

    #[test]
    fn forward_all_forwards() {
        use nfv_des::SimTime;
        use nfv_pkt::FlowId;
        let mut h = ForwardAll;
        let mut p = Packet::new(FlowId(0), ChainId(0), 64, SimTime::ZERO);
        assert_eq!(h.handle(&mut p, SimTime::ZERO), NfAction::Forward);
    }

    #[test]
    fn outbox_is_fifo() {
        let mut rt = NfRuntime::new(NfSpec::new("a", 0, 100), TaskId(0));
        rt.outbox.push_back(PktId(1));
        rt.outbox.push_back(PktId(2));
        assert_eq!(rt.outbox.pop_front(), Some(PktId(1)));
    }
}
