//! # nfv-platform — an OpenNetVM-like NFV platform
//!
//! The structural layer NFVnice runs on: NF processes with RX/TX descriptor
//! rings over a shared mempool, service chains, a flow table, the manager's
//! RX/TX thread mechanisms (zero-copy descriptor movement, overload
//! feedback from ring enqueues), the `libnf` batch execution loop (≤32
//! packets per batch, yield-flag checks at batch boundaries, async storage
//! I/O with double buffering), and the OS scheduler + cgroups the NFs run
//! under.
//!
//! Policy — admission control, wakeup classification, ECN marking, CPU
//! weight assignment — is injected by the `nfvnice` crate; a platform
//! driven with no-op policies behaves like vanilla OpenNetVM (the paper's
//! "Default" baseline).

#![warn(missing_docs)]

pub mod chain;
pub mod nf;
pub mod platform;
pub mod stats;

pub use chain::ChainRegistry;
pub use nf::{
    BlockReason, CostModel, ForwardAll, IoMode, NfAction, NfHealth, NfIoSpec, NfRuntime, NfSpec,
    PacketHandler,
};
pub use platform::{AdmitFn, BatchEffects, BatchPlan, IoCompleteOutcome, Platform, PlatformConfig};
pub use stats::{ChainStats, DropLocation, FlowStats, PlatformStats, TcpEvent, TcpEventKind};
