//! Platform-wide statistics and the TCP feedback channel.

use nfv_des::{Duration, DurationHistogram, RateMeter};
use nfv_pkt::{ChainId, FlowId, NfId};

/// Where a packet died. Locations early in the pipeline wasted no work;
/// drops at a downstream NF's full ring wasted the processing of every NF
/// the packet already traversed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropLocation {
    /// NIC hardware RX queue overflowed.
    NicOverflow,
    /// No flow-table rule matched.
    Unclassified,
    /// Shared mempool exhausted.
    MempoolExhausted,
    /// NFVnice selective early discard at the chain entry (throttled).
    EntryThrottle,
    /// An NF's RX ring was full.
    RingFull(NfId),
    /// The NF's handler decided to drop (functional drop).
    Handler(NfId),
    /// The NF is dead: freed by its crash drain, or shed at entry /
    /// forwarding because the packet's chain routes through it.
    NfDown(NfId),
}

/// Congestion feedback destined for a responsive (TCP) source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpEvent {
    /// The flow the event belongs to.
    pub flow: FlowId,
    /// Sequence number of the segment.
    pub seq: u64,
    /// What happened to it.
    pub kind: TcpEventKind,
}

/// Outcome of a TCP segment inside the box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpEventKind {
    /// Exited the chain; `ce` reports an ECN congestion-experienced mark.
    Delivered {
        /// ECN CE mark observed.
        ce: bool,
    },
    /// Dropped somewhere inside the box.
    Dropped,
}

/// Heavyweight per-flow measurement state: rate meters plus the latency
/// histogram (~4 KB of buckets). Boxed and optional so million-flow runs
/// can keep per-flow accounting at a few dozen bytes per flow
/// (`PlatformConfig::flow_detail = false`); the plain counters in
/// [`FlowStats`] are always maintained.
#[derive(Debug, Default)]
pub struct FlowDetail {
    /// Per-second delivered packet rate.
    pub pps_meter: RateMeter,
    /// Per-second delivered bit rate ÷ 8 (bytes/s meter).
    pub bytes_meter: RateMeter,
    /// End-to-end latency (NIC arrival → wire exit) of delivered packets.
    pub latency: DurationHistogram,
}

/// Per-flow delivery accounting.
#[derive(Debug)]
pub struct FlowStats {
    /// Packets that exited the chain.
    pub delivered: u64,
    /// Bytes that exited the chain.
    pub delivered_bytes: u64,
    /// Packets dropped anywhere inside the box.
    pub dropped: u64,
    /// Packets discarded by admission control at chain entry.
    pub entry_drops: u64,
    /// Meters and latency histogram; `None` in compact (million-flow) mode.
    pub detail: Option<Box<FlowDetail>>,
}

impl Default for FlowStats {
    fn default() -> Self {
        Self::detailed()
    }
}

impl FlowStats {
    /// Full accounting: counters plus meters and latency histogram (the
    /// pre-split behavior, and still the default).
    pub fn detailed() -> Self {
        FlowStats {
            delivered: 0,
            delivered_bytes: 0,
            dropped: 0,
            entry_drops: 0,
            detail: Some(Box::default()),
        }
    }

    /// Counters only — what million-flow scale runs use.
    pub fn compact() -> Self {
        FlowStats {
            delivered: 0,
            delivered_bytes: 0,
            dropped: 0,
            entry_drops: 0,
            detail: None,
        }
    }

    /// Median end-to-end latency, when detail is tracked.
    pub fn latency_p50(&self) -> Option<Duration> {
        self.detail.as_ref().and_then(|d| d.latency.median())
    }

    /// 99th-percentile end-to-end latency, when detail is tracked.
    pub fn latency_p99(&self) -> Option<Duration> {
        self.detail
            .as_ref()
            .and_then(|d| d.latency.percentile(99.0))
    }
}

/// Per-chain delivery accounting.
#[derive(Debug, Default)]
pub struct ChainStats {
    /// Packets that completed the full chain.
    pub delivered: u64,
    /// Packets discarded by admission control at entry.
    pub entry_drops: u64,
    /// Per-second completed-packet rate.
    pub pps_meter: RateMeter,
    /// End-to-end latency (NIC arrival → wire exit) of delivered packets
    /// — the distribution behind the per-chain p50/p99/p999 columns.
    pub latency: DurationHistogram,
}

/// Global counters not attributable to one flow.
#[derive(Debug, Default)]
pub struct PlatformStats {
    /// Frames lost in NIC hardware.
    pub nic_overflow: u64,
    /// Frames with no flow rule.
    pub unclassified: u64,
    /// Frames lost to mempool exhaustion.
    pub mempool_fail: u64,
    /// Packets discarded by entry admission (all chains).
    pub entry_throttle_drops: u64,
    /// Packets lost to dead NFs (crash drains + shedding for down chains).
    pub nf_down_drops: u64,
    /// RX-dequeue accounting desyncs (a packet left a ring whose chain had
    /// no pending count). Surfaced by the sanitizer as an invariant
    /// violation instead of a mid-sim panic.
    pub pending_desync: u64,
    /// Running totals of the per-flow `delivered`/`dropped` counters —
    /// maintained on each delivery/drop so the packet-conservation ledger
    /// is O(1) even with a million flows.
    pub delivered_total: u64,
    /// See [`PlatformStats::delivered_total`].
    pub dropped_total: u64,
    /// Per-flow stats, indexed by `FlowId`.
    pub flows: Vec<FlowStats>,
    /// Per-chain stats, indexed by `ChainId`.
    pub chains: Vec<ChainStats>,
}

impl PlatformStats {
    /// Record a delivery for `flow` on `chain` with end-to-end `latency`.
    pub fn delivered(&mut self, flow: FlowId, chain: ChainId, bytes: u32, latency: Duration) {
        self.delivered_total += 1;
        let f = &mut self.flows[flow.index()];
        f.delivered += 1;
        f.delivered_bytes += bytes as u64;
        if let Some(d) = f.detail.as_deref_mut() {
            d.pps_meter.add(1);
            d.bytes_meter.add(bytes as u64);
            d.latency.record(latency);
        }
        let c = &mut self.chains[chain.index()];
        c.delivered += 1;
        c.pps_meter.add(1);
        c.latency.record(latency);
    }

    /// Record an in-box drop for `flow` (and entry bookkeeping when the
    /// location is the chain entry).
    pub fn dropped(&mut self, flow: FlowId, chain: ChainId, loc: DropLocation) {
        self.dropped_total += 1;
        self.flows[flow.index()].dropped += 1;
        if loc == DropLocation::EntryThrottle {
            self.flows[flow.index()].entry_drops += 1;
            self.chains[chain.index()].entry_drops += 1;
            self.entry_throttle_drops += 1;
        }
        if matches!(loc, DropLocation::NfDown(_)) {
            self.nf_down_drops += 1;
        }
    }

    /// Close the per-second measurement interval on every meter.
    pub fn roll(&mut self, now: nfv_des::SimTime) {
        for f in &mut self.flows {
            if let Some(d) = f.detail.as_deref_mut() {
                d.pps_meter.roll(now);
                d.bytes_meter.roll(now);
            }
        }
        for c in &mut self.chains {
            c.pps_meter.roll(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nfv_des::SimTime;

    #[test]
    fn delivery_updates_flow_and_chain() {
        let mut s = PlatformStats::default();
        s.flows.push(FlowStats::default());
        s.chains.push(ChainStats::default());
        s.delivered(FlowId(0), ChainId(0), 64, Duration::from_micros(5));
        s.delivered(FlowId(0), ChainId(0), 64, Duration::from_micros(7));
        assert_eq!(s.flows[0].delivered, 2);
        assert_eq!(s.flows[0].delivered_bytes, 128);
        assert_eq!(s.chains[0].delivered, 2);
        assert!(s.flows[0].latency_p50().unwrap() >= Duration::from_micros(4));
    }

    #[test]
    fn entry_drop_counts_at_all_levels() {
        let mut s = PlatformStats::default();
        s.flows.push(FlowStats::default());
        s.chains.push(ChainStats::default());
        s.dropped(FlowId(0), ChainId(0), DropLocation::EntryThrottle);
        s.dropped(FlowId(0), ChainId(0), DropLocation::RingFull(NfId(1)));
        assert_eq!(s.flows[0].dropped, 2);
        assert_eq!(s.flows[0].entry_drops, 1);
        assert_eq!(s.chains[0].entry_drops, 1);
        assert_eq!(s.entry_throttle_drops, 1);
    }

    #[test]
    fn rolling_produces_rates() {
        let mut s = PlatformStats::default();
        s.flows.push(FlowStats::default());
        s.chains.push(ChainStats::default());
        s.delivered(FlowId(0), ChainId(0), 64, Duration::from_micros(1));
        s.roll(SimTime::from_secs(1));
        let (_, mean, _) = s.flows[0].detail.as_ref().unwrap().pps_meter.summary();
        assert_eq!(mean, 1.0);
    }

    #[test]
    fn compact_flows_keep_counters_without_detail() {
        let mut s = PlatformStats::default();
        s.flows.push(FlowStats::compact());
        s.chains.push(ChainStats::default());
        s.delivered(FlowId(0), ChainId(0), 64, Duration::from_micros(5));
        s.roll(SimTime::from_secs(1));
        assert_eq!(s.flows[0].delivered, 1);
        assert_eq!(s.flows[0].delivered_bytes, 64);
        assert!(s.flows[0].latency_p50().is_none());
        // Chain-level accounting is unaffected by compact flows.
        assert!(s.chains[0].latency.median().is_some());
    }
}
