//! CLI driver: `nfv-bench [experiment...] [--quick] [--jobs N] [--list]
//! [--only <experiment>] [--sanitize] [--trace <path>]
//! [--metrics-out <path>]`.
//!
//! With no arguments, runs the full evaluation suite in paper order.
//! `--list` prints the experiment names and exits; `--only <name>` (or a
//! bare positional name) restricts the run to the named experiments and
//! rejects unknown names.
//!
//! `--jobs N` runs up to `N` suite entries concurrently on harness
//! threads. Each cell is still its own single-threaded, seeded
//! simulation, and results are committed in suite order, so stdout,
//! `--trace`, `--metrics-out` and the timings file are byte-identical to
//! a serial run (wall-clock fields aside).
//!
//! `--sanitize` runs every experiment with the runtime sim-sanitizer in
//! strict mode: conservation, hysteresis and suppression-safety are
//! audited at every event, and a violation aborts the run.
//!
//! `--trace <path>` streams structured events (throttles, drops, ECN
//! marks, share writes, context switches, ...) from every cell as JSONL.
//! `--metrics-out <path>` writes per-NF/per-chain time series for every
//! cell as one JSON document (or CSV sections when the path ends in
//! `.csv`). Either flag also emits per-cell wall-clock timings to stderr
//! and writes them — plus the worker count and whole-suite wall clock —
//! to `BENCH_timings.json` next to the metrics file (or in the working
//! directory for `--trace` alone); wall times live in their own file so
//! the metrics document stays byte-reproducible.

use nfv_bench::experiments::*;
use nfv_bench::{Exp, RunLength};

fn main() {
    let suite: &[Exp] = &[
        ("fig1", fig1::run),
        ("fig7", fig7::run),
        ("table5", multicore::run_table5),
        ("fig9", multicore::run_fig9),
        ("fig10", fig10::run),
        ("fig11", fig11::run),
        ("fig12", fig12::run),
        ("fig13", fig13::run),
        ("fig14", fig14::run),
        ("fig15", fig15::run),
        ("fig16", fig16::run),
        ("tuning", tuning::run),
        ("ablations", ablations::run),
        ("coop", coop::run),
        ("faults", faults::run),
        ("elastic", elastic::run),
        ("slo", slo::run),
        ("scale", scale::run),
    ];

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut jobs = 1usize;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--list" => {
                for (name, _) in suite {
                    println!("{name}");
                }
                return;
            }
            "--jobs" => {
                let n = it.next().expect("--jobs requires a count");
                jobs = n.parse().expect("--jobs requires a positive integer");
                assert!(jobs >= 1, "--jobs requires a positive integer");
            }
            "--only" => {
                let name = it.next().expect("--only requires an experiment name");
                wanted.push(name.clone());
            }
            "--sanitize" => {
                nfv_bench::enable_sanitizer();
                eprintln!("nfv-bench: sim-sanitizer enabled (strict)");
            }
            "--trace" => {
                let p = it.next().expect("--trace requires a path");
                nfv_bench::enable_trace(p).expect("failed to open --trace output");
                trace_path = Some(p.clone());
            }
            "--metrics-out" => {
                let p = it.next().expect("--metrics-out requires a path");
                nfv_bench::enable_metrics();
                metrics_path = Some(p.clone());
            }
            flag if flag.starts_with("--") => {
                eprintln!("nfv-bench: ignoring unknown flag {flag}");
            }
            name => wanted.push(name.to_string()),
        }
    }
    for w in &wanted {
        if !suite.iter().any(|(name, _)| name == w) {
            eprintln!("nfv-bench: unknown experiment {w:?} (see --list)");
            std::process::exit(2);
        }
    }
    let len = if quick {
        RunLength::quick()
    } else {
        RunLength::full()
    };
    let selected: Vec<Exp> = suite
        .iter()
        .filter(|(name, _)| wanted.is_empty() || wanted.iter().any(|w| w == name))
        .copied()
        .collect();

    // Suite wall clock is bench telemetry only (lands in the timings file,
    // never in metrics).
    let t0 = std::time::Instant::now(); // nfv-lint: allow(wall-clock) -- suite telemetry, never enters the sim
    nfv_bench::run_suite(&selected, len, jobs);
    nfv_bench::set_suite_meta(jobs, t0.elapsed().as_secs_f64() * 1e3);

    if trace_path.is_some() || metrics_path.is_some() {
        nfv_bench::flush_trace();
        nfv_bench::print_timings();
        if let Some(p) = &metrics_path {
            if let Some(dir) = std::path::Path::new(p).parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).expect("failed to create metrics dir");
                }
            }
            let body = if p.ends_with(".csv") {
                nfv_bench::metrics_csv()
            } else {
                nfv_bench::metrics_json()
            };
            std::fs::write(p, body).expect("failed to write --metrics-out");
            eprintln!("nfv-bench: wrote metrics to {p}");
        }
        // Wall-clock timings are nondeterministic by nature, so they go in
        // their own file and never pollute the metrics document.
        let timings = std::path::Path::new(metrics_path.as_deref().unwrap_or(""))
            .parent()
            .filter(|d| !d.as_os_str().is_empty())
            .map(|d| d.join("BENCH_timings.json"))
            .unwrap_or_else(|| std::path::PathBuf::from("BENCH_timings.json"));
        std::fs::write(&timings, nfv_bench::timings_json())
            .expect("failed to write BENCH_timings.json");
        eprintln!("nfv-bench: wrote timings to {}", timings.display());
    }
}
