//! CLI driver: `nfv-bench [experiment...] [--quick] [--sanitize]`.
//!
//! With no arguments, runs the full evaluation suite in paper order.
//! `--sanitize` runs every experiment with the runtime sim-sanitizer in
//! strict mode: conservation, hysteresis and suppression-safety are
//! audited at every event, and a violation aborts the run.

use nfv_bench::experiments::*;
use nfv_bench::RunLength;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--sanitize") {
        nfv_bench::enable_sanitizer();
        eprintln!("nfv-bench: sim-sanitizer enabled (strict)");
    }
    let len = if quick {
        RunLength::quick()
    } else {
        RunLength::full()
    };
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let all = wanted.is_empty();
    let want = |name: &str| all || wanted.contains(&name);

    if want("fig1") {
        println!("{}", fig1::run(len));
    }
    if want("fig7") {
        println!("{}", fig7::run(len));
    }
    if want("table5") {
        println!("{}", multicore::run_table5(len));
    }
    if want("fig9") {
        println!("{}", multicore::run_fig9(len));
    }
    if want("fig10") {
        println!("{}", fig10::run(len));
    }
    if want("fig11") {
        println!("{}", fig11::run(len));
    }
    if want("fig12") {
        println!("{}", fig12::run(len));
    }
    if want("fig13") {
        println!("{}", fig13::run(len));
    }
    if want("fig14") {
        println!("{}", fig14::run(len));
    }
    if want("fig15") {
        println!("{}", fig15::run(len));
    }
    if want("fig16") {
        println!("{}", fig16::run(len));
    }
    if want("tuning") {
        println!("{}", tuning::run(len));
    }
    if want("ablations") {
        println!("{}", ablations::run(len));
    }
    if want("coop") {
        println!("{}", coop::run(len));
    }
}
