//! # nfv-bench — experiment harness for the NFVnice reproduction
//!
//! Regenerates every table and figure of the paper's evaluation (§4).
//! The `nfv-bench` binary drives full-fidelity runs; the criterion benches
//! under `benches/` run compressed versions of the same cells plus
//! microbenchmarks and design-ablation comparisons.

#![warn(missing_docs)]

pub mod experiments;
pub mod util;

pub use util::{
    enable_metrics, enable_sanitizer, enable_trace, flush_trace, metrics_csv, metrics_json,
    print_timings, run_logged, run_suite, sanitizer_enabled, set_suite_meta, timings_json, Exp,
    RunLength, Table,
};
