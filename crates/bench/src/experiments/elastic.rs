//! Elastic NF scaling: backpressure-only shedding versus adding capacity
//! on the same seeded overload trace.
//!
//! Not a paper figure — NFVnice §5 fixes the instance layout and sheds
//! overload at entry — but the natural next question is what the same
//! manager can do when it is *allowed* to change the layout. One core
//! hosts a cheap forwarder and a heavy DPI-class NF, the second core
//! idles; a pinned flow overloads the heavy chain from t=0 and a flash
//! sweep of thousands of fresh flows lands at one fifth of the run. The
//! four cells hold traffic fixed and vary only the controller's freedom:
//! shed at entry (the NFVnice baseline), replicate the bottleneck onto
//! the idle core (fresh flows RSS-shard across the group), migrate the
//! cheapest NF off the saturated core, or both. "both" also retires the
//! replica if the surge ever falls below the idle hysteresis.
//!
//! Scale-out and migration must each beat the backpressure-only cell's
//! goodput — that is the asserted headline property — while the baseline
//! cell documents what pure admission control salvages.

use crate::util::{mpps, run_logged, sim_config, RunLength, Table, LOW};
use nfv_pkt::TuplePattern;
use nfv_traffic::SweepSource;
use nfvnice::{
    Duration, ElasticConfig, NfSpec, NfvniceConfig, Policy, Report, SimTime, Simulation,
};

/// Heavy NF per-packet cost (ns): ~100 kpps capacity, a DPI-class hog.
const HEAVY: u64 = 26_000;
/// Pinned overload on the heavy chain (pps), 10× its capacity.
const PINNED_RATE: f64 = 1_000_000.0;
/// Companion load on the cheap chain (pps).
const CHEAP_RATE: f64 = 1_000_000.0;
/// Flash-surge rate (pps) spread over the sweep's fresh flows.
const SURGE_RATE: f64 = 400_000.0;
/// Fresh flows in the surge sweep.
const SURGE_FLOWS: u32 = 4096;

/// One cell: which controller freedoms are enabled.
#[derive(Clone, Copy)]
pub struct Scenario {
    /// Replicate persistent bottlenecks onto the idle core.
    pub scale_out: bool,
    /// Migrate the cheapest NF off a saturated core.
    pub migration: bool,
    /// Retire replicas that idle past the hysteresis.
    pub scale_in: bool,
}

impl Scenario {
    fn elastic(self) -> ElasticConfig {
        ElasticConfig {
            scale_out: self.scale_out,
            migration: self.migration,
            scale_in: self.scale_in,
            ..ElasticConfig::default()
        }
    }
}

/// Two cores, cheap + heavy both homed on core 0, surge starting at one
/// fifth of the run so the controller's dwell window has passed when the
/// fresh flows arrive.
fn build(sc: Scenario, steady: Duration) -> Simulation {
    let mut cfg = sim_config(2, Policy::CfsBatch, NfvniceConfig::full());
    cfg.elastic = sc.elastic();
    let mut s = Simulation::new(cfg);
    let cheap = s.add_nf(NfSpec::new("NF1-fwd", 0, LOW));
    let heavy = s.add_nf(NfSpec::new("NF2-dpi", 0, HEAVY));
    let cheap_chain = s.add_chain(&[cheap]);
    let heavy_chain = s.add_chain(&[heavy]);
    s.add_udp(cheap_chain, CHEAP_RATE, 64);
    s.add_udp(heavy_chain, PINNED_RATE, 64); // pinned: always routed to the base
    s.add_wildcard(TuplePattern::any(), heavy_chain, 0);
    let surge_at = SimTime::ZERO + Duration::from_nanos(steady.as_nanos() / 5);
    let surge_len = Duration::from_nanos(steady.as_nanos() * 4 / 5);
    s.add_sweep(SweepSource::flash(
        1 << 16,
        SURGE_FLOWS,
        64,
        SURGE_RATE,
        surge_at,
        surge_len,
    ));
    s
}

/// Run one named cell for the criterion benches and the suite.
pub fn run_cell(name: &str, sc: Scenario, len: RunLength) -> Report {
    let mut s = build(sc, len.steady);
    run_logged("elastic", name, &mut s, len.steady)
}

/// The cell set, in increasing order of controller freedom.
pub fn cells() -> Vec<(&'static str, Scenario)> {
    vec![
        (
            "bp-only",
            Scenario {
                scale_out: false,
                migration: false,
                scale_in: false,
            },
        ),
        (
            "scale-out",
            Scenario {
                scale_out: true,
                migration: false,
                scale_in: false,
            },
        ),
        (
            "migration",
            Scenario {
                scale_out: false,
                migration: true,
                scale_in: false,
            },
        ),
        (
            "both",
            Scenario {
                scale_out: true,
                migration: true,
                scale_in: true,
            },
        ),
    ]
}

/// Full experiment output.
pub fn run(len: RunLength) -> String {
    let mut out = String::new();
    out.push_str(
        "\n=== Elastic — scale-out / migration vs backpressure-only on one \
         overload trace (goodput Mpps) ===\n",
    );
    let mut t = Table::new(&[
        "cell",
        "total",
        "dpi-chain",
        "fwd-chain",
        "outs",
        "migs",
        "ins",
        "entry-drops",
    ]);
    for (name, sc) in cells() {
        let r = run_cell(name, sc, len);
        let span = len.steady.as_secs_f64();
        t.row(vec![
            name.to_string(),
            mpps(r.total_delivered_pps),
            mpps(r.chains[1].delivered as f64 / span),
            mpps(r.chains[0].delivered as f64 / span),
            r.nf_scale_outs.to_string(),
            r.nf_migrations.to_string(),
            r.nf_scale_ins.to_string(),
            crate::util::human_count(r.entry_drops as f64),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nBackpressure can only shed the overload; every elastic cell turns \
         the idle core into goodput instead — a replica absorbs the fresh-flow \
         surge (in-flight flows stay pinned to the base instance), migration \
         gives the saturated core back to the hog.\n",
    );
    out
}
