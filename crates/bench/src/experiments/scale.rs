//! SCALE experiment: the million-flow flow-state engine under
//! internet-like load.
//!
//! The paper's own cells drive a handful of pinned CBR flows; this family
//! instead stresses the flow table the way a provider edge would —
//! millions of distinct 5-tuples learned reactively through wildcard
//! rules, heavy-tailed per-flow rates, flash crowds and diurnal ramps —
//! and reports what the engine sustains:
//!
//! - `1m_flows` — one tenant sweeps its entire 2^20-tuple slice fast
//!   enough to install over a million concurrent flows, with classify on
//!   the exact-match fast path for the steady-state majority.
//! - `tenants` — four tenants with private tuple slices and chains share
//!   one core while aging keeps each tenant's table slice bounded.
//! - `elephants_mice` — 256 pinned flows with bounded-Pareto rates: the
//!   fairness picture when a few elephants carry most of the load.
//! - `flash_crowd` — a burst of brand-new flows arrives mid-run and is
//!   aged back out before the end; the table's footprint must follow.
//! - `diurnal` — a raised-cosine day profile over a windowed sweep.
//!
//! Flow-table internals (probe lengths, rehashes) go to
//! `BENCH_timings.json`; this table prints only deterministic sim state.

use crate::util::{human_count, mpps, run_logged, sim_config, RunLength, Table, LOW, MED};
use nfvnice::{
    diurnal_windows, heavy_tail_rates, tenant, Duration, FlowAging, NfSpec, NfvniceConfig,
    ParetoShape, Policy, Report, SimRng, SimTime, Simulation, SweepSource, TenantSpec, TENANT_SPAN,
};

/// Aging policy for the churn cells: the epoch advances every 16 monitor
/// ticks (16 ms at the default 1 ms sample period) and an unpinned flow
/// idle for more than 2 whole epochs is evicted.
pub fn churn_aging() -> FlowAging {
    FlowAging {
        idle_epochs: 2,
        epoch_ticks: 16,
    }
}

/// A one-core simulation in compact flow-stats mode: per-flow counters
/// stay, the ~4 KB/flow meters + latency detail is skipped — the only
/// way a million-flow run fits in memory.
fn scale_sim(aging: Option<FlowAging>) -> Simulation {
    let mut cfg = sim_config(1, Policy::CfsBatch, NfvniceConfig::full());
    cfg.platform.flow_detail = false;
    if let Some(a) = aging {
        cfg.platform.flow_aging = a;
    }
    Simulation::new(cfg)
}

fn frac(d: Duration, num: u64, den: u64) -> SimTime {
    SimTime::from_nanos(d.as_nanos() * num / den)
}

/// The million-flow cell: tenant 0's sweep covers its whole 2^20-tuple
/// slice at 4.5 Mpps, so every tuple is visited within the first ~233 ms
/// and the table carries the full slice concurrently from then on.
pub fn run_1m(len: RunLength) -> Report {
    let mut s = scale_sim(None);
    let nf = s.add_nf(NfSpec::new("fwd", 0, LOW));
    let chain = s.add_chain(&[nf]);
    let t = tenant(TenantSpec {
        index: 0,
        flows: TENANT_SPAN,
        rate_pps: 4.5e6,
        frame_size: 64,
    });
    s.add_wildcard(t.pattern, chain, 0);
    s.add_sweep(t.sweep);
    run_logged("scale", "1m_flows", &mut s, len.steady)
}

/// Four tenants, each with a private tuple slice, chain and offered load,
/// sharing one core; aging on, so each tenant's learned flows track its
/// sweep's working set.
pub fn run_tenants(len: RunLength) -> Report {
    let mut s = scale_sim(Some(churn_aging()));
    let specs = [
        (1u32, 65_536u32, 1.2e6, LOW),
        (2, 32_768, 0.8e6, LOW),
        (3, 16_384, 0.5e6, MED),
        (4, 8_192, 0.3e6, MED),
    ];
    for (index, flows, rate_pps, cost) in specs {
        let nf = s.add_nf(NfSpec::new(format!("tenant{index}"), 0, cost));
        let chain = s.add_chain(&[nf]);
        let t = tenant(TenantSpec {
            index,
            flows,
            rate_pps,
            frame_size: 64,
        });
        s.add_wildcard(t.pattern, chain, 0);
        s.add_sweep(t.sweep);
    }
    run_logged("scale", "tenants", &mut s, len.steady)
}

/// 256 pinned flows whose rates are bounded-Pareto draws summing to
/// 4 Mpps: many mice, a few elephants, one shared chain.
pub fn run_elephants(len: RunLength) -> Report {
    let mut s = scale_sim(None);
    let nf = s.add_nf(NfSpec::new("mix", 0, MED));
    let chain = s.add_chain(&[nf]);
    let mut rng = SimRng::seed_from_u64(424_242);
    for rate in heavy_tail_rates(&mut rng, 256, 4.0e6, ParetoShape::elephants_mice()) {
        s.add_udp(chain, rate, 64);
    }
    run_logged("scale", "elephants_mice", &mut s, len.steady)
}

/// A background tenant plus a flash crowd of 256 Ki brand-new flows in
/// the second quarter of the run; aging evicts the crowd before the end.
pub fn run_flash(len: RunLength) -> Report {
    let mut s = scale_sim(Some(churn_aging()));
    let nf = s.add_nf(NfSpec::new("edge", 0, LOW));
    let chain = s.add_chain(&[nf]);
    let bg = tenant(TenantSpec {
        index: 0,
        flows: 4_096,
        rate_pps: 0.5e6,
        frame_size: 64,
    });
    s.add_wildcard(bg.pattern, chain, 0);
    s.add_sweep(bg.sweep);
    let crowd = tenant(TenantSpec {
        index: 1,
        flows: 1 << 18,
        rate_pps: 4.0e6,
        frame_size: 64,
    });
    s.add_wildcard(crowd.pattern, chain, 0);
    s.add_sweep(
        crowd
            .sweep
            .window(frac(len.steady, 1, 4), frac(len.steady, 2, 4)),
    );
    run_logged("scale", "flash_crowd", &mut s, len.steady)
}

/// A day in a run: eight piecewise-constant windows whose rates follow a
/// raised cosine from 0.5 to 4 Mpps over a 64 Ki-tuple space.
pub fn run_diurnal(len: RunLength) -> Report {
    let mut s = scale_sim(Some(churn_aging()));
    let nf = s.add_nf(NfSpec::new("day", 0, LOW));
    let chain = s.add_chain(&[nf]);
    let t = tenant(TenantSpec {
        index: 0,
        flows: 65_536,
        rate_pps: 1.0, // placeholder; windows below carry the real rates
        frame_size: 64,
    });
    s.add_wildcard(t.pattern, chain, 0);
    for (start, stop, rate) in diurnal_windows(len.steady, 8, 0.5e6, 4.0e6) {
        s.add_sweep(SweepSource::new(0, 65_536, 64, rate).window(start, stop));
    }
    run_logged("scale", "diurnal", &mut s, len.steady)
}

/// Full experiment: one row of deterministic sim state per cell.
pub fn run(len: RunLength) -> String {
    let mut out = String::new();
    out.push_str(
        "\n=== SCALE — million-flow flow-state engine under internet-like load \
         (one core, compact flow stats) ===\n",
    );
    let mut t = Table::new(&[
        "cell",
        "flows",
        "evicted",
        "delivered Mpps",
        "entry drops",
        "nic drops",
    ]);
    type Cell = (&'static str, fn(RunLength) -> Report);
    let cells: [Cell; 5] = [
        ("1m_flows", run_1m),
        ("tenants", run_tenants),
        ("elephants_mice", run_elephants),
        ("flash_crowd", run_flash),
        ("diurnal", run_diurnal),
    ];
    for (name, cell) in cells {
        let r = cell(len);
        t.row(vec![
            name.to_string(),
            human_count(r.flows_active as f64),
            human_count(r.flows_evicted as f64),
            mpps(r.total_delivered_pps),
            human_count(r.entry_drops as f64),
            human_count(r.nic_overflow as f64),
        ]);
    }
    out.push_str(&t.render());
    out
}
