//! Figure 11: service-chain heterogeneity — all six orderings of the
//! Low/Med/High chain, so the bottleneck's position moves through the
//! chain. The paper's headline observation: RR(100 ms) collapses when the
//! bottleneck is downstream of a fast producer, while NFVnice is superior
//! in every permutation, for every scheduler.

use crate::util::{all_policies, mpps, sim, RunLength, Table, HIGH, LOW, MED};
use nfvnice::{NfSpec, NfvniceConfig, Policy, Report};

/// The six (label, costs) permutations.
pub fn orders() -> Vec<(&'static str, [u64; 3])> {
    vec![
        ("Low-Med-High", [LOW, MED, HIGH]),
        ("Low-High-Med", [LOW, HIGH, MED]),
        ("Med-Low-High", [MED, LOW, HIGH]),
        ("Med-High-Low", [MED, HIGH, LOW]),
        ("High-Low-Med", [HIGH, LOW, MED]),
        ("High-Med-Low", [HIGH, MED, LOW]),
    ]
}

/// One (order, scheduler, variant) cell.
pub fn run_cell(costs: [u64; 3], policy: Policy, variant: NfvniceConfig, len: RunLength) -> Report {
    let mut s = sim(1, policy, variant);
    let nfs: Vec<_> = costs
        .iter()
        .enumerate()
        .map(|(i, &c)| s.add_nf(NfSpec::new(format!("NF{}", i + 1), 0, c)))
        .collect();
    let chain = s.add_chain(&nfs);
    s.add_udp(chain, crate::util::line_rate(64), 64);
    let cell = format!(
        "{}-{}-{}/{}/{}",
        costs[0],
        costs[1],
        costs[2],
        policy.label(),
        variant.label()
    );
    crate::util::run_logged("fig11", &cell, &mut s, len.steady)
}

/// Full figure: throughput per ordering, Default vs NFVnice per scheduler.
pub fn run(len: RunLength) -> String {
    let mut out = String::new();
    out.push_str("\n=== Fig 11 — chain orderings (Mpps): Default vs NFVnice per scheduler ===\n");
    let mut header = vec!["order".to_string()];
    for p in all_policies() {
        header.push(format!("{} Def", p.label()));
        header.push(format!("{} Nice", p.label()));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);
    for (label, costs) in orders() {
        let mut cells = vec![label.to_string()];
        for policy in all_policies() {
            let d = run_cell(costs, policy, NfvniceConfig::off(), len);
            let n = run_cell(costs, policy, NfvniceConfig::full(), len);
            cells.push(mpps(d.chains[0].pps));
            cells.push(mpps(n.chains[0].pps));
        }
        t.row(cells);
    }
    out.push_str(&t.render());
    out
}
