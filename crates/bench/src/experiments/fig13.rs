//! Figure 13: performance isolation between responsive (TCP) and
//! non-responsive (UDP) flows.
//!
//! One TCP flow rides NF1(low)→NF2(med) on a shared core, window-capped
//! near 4 Gbps. Ten UDP flows share NF1/NF2 but continue to NF3 — a heavy
//! NF on its own core whose capacity is ~280 Mbit/s of 64 B frames — and
//! blast far more than that. Without NFVnice the doomed UDP load saturates
//! the shared core and craters TCP; with per-flow backpressure the UDP is
//! shed at entry, TCP keeps ~3-4 Gbps, and UDP still gets its bottleneck
//! rate.

use crate::util::{sim, RunLength, Table};
use nfvnice::{Duration, NfSpec, NfvniceConfig, Policy, Report, SimTime};

/// UDP on/off window in paper-time seconds.
pub const UDP_ON: u64 = 15;
/// UDP off time (paper-time seconds).
pub const UDP_OFF: u64 = 40;
/// Total timeline (paper-time seconds).
pub const TOTAL: u64 = 55;

/// Outcome of one variant run.
pub struct Fig13Run {
    /// Full report (series included).
    pub report: Report,
    /// TCP flow index into the report.
    pub tcp_flow: usize,
    /// UDP flow indices.
    pub udp_flows: Vec<usize>,
}

/// Run one variant over the (possibly compressed) timeline.
pub fn run_cell(variant: NfvniceConfig, len: RunLength) -> Fig13Run {
    let scale = len.timeline_scale;
    let mut s = sim(2, Policy::CfsBatch, variant);
    let nf1 = s.add_nf(NfSpec::new("NF1-low", 0, 120));
    let nf2 = s.add_nf(NfSpec::new("NF2-med", 0, 270));
    // NF3: 4753 cycles ⇒ ~547 kpps of 64 B frames ≈ 280 Mbit/s bottleneck.
    let nf3 = s.add_nf(NfSpec::new("NF3-high", 1, 4753));
    let tcp_chain = s.add_chain(&[nf1, nf2]);
    let tcp = s.add_tcp_with(tcp_chain, 1500, Duration::from_micros(100), |t| {
        t.with_max_cwnd(33.0) // ≈ 4 Gbit/s at 100 µs RTT
    });
    let on = SimTime::from_millis(UDP_ON * 1000 / scale);
    let off = SimTime::from_millis(UDP_OFF * 1000 / scale);
    let mut udp_flows = Vec::new();
    for _ in 0..10 {
        // Per-flow chain definitions give per-flow backpressure (§3.3).
        let chain = s.add_chain(&[nf1, nf2, nf3]);
        let f = s.add_udp_with(chain, 800_000.0, 64, |f| f.window(on, off));
        udp_flows.push(f.index());
    }
    let report = crate::util::run_logged(
        "fig13",
        variant.label(),
        &mut s,
        Duration::from_millis(TOTAL * 1000 / scale),
    );
    Fig13Run {
        tcp_flow: tcp.index(),
        udp_flows,
        report,
    }
}

/// Render the per-second throughput timeline for both variants.
pub fn run(len: RunLength) -> String {
    let mut out = String::new();
    out.push_str("\n=== Fig 13 — TCP/UDP performance isolation (per-second Mbit/s) ===\n");
    let d = run_cell(NfvniceConfig::off(), len);
    let n = run_cell(NfvniceConfig::full(), len);
    let secs = d.report.series.flow_mbps[0].len();
    let mut t = Table::new(&[
        "sec",
        "TCP (Default)",
        "UDP agg (Default)",
        "TCP (NFVnice)",
        "UDP agg (NFVnice)",
    ]);
    for sec in 0..secs {
        let udp_sum = |r: &Fig13Run| -> f64 {
            r.udp_flows
                .iter()
                .map(|&f| {
                    r.report.series.flow_mbps[f]
                        .get(sec)
                        .copied()
                        .unwrap_or(0.0)
                })
                .sum()
        };
        t.row(vec![
            format!("{}", (sec as u64 + 1) * len.timeline_scale),
            format!("{:.1}", d.report.series.flow_mbps[d.tcp_flow][sec]),
            format!("{:.1}", udp_sum(&d)),
            format!("{:.1}", n.report.series.flow_mbps[n.tcp_flow][sec]),
            format!("{:.1}", udp_sum(&n)),
        ]);
    }
    out.push_str(&t.render());
    out
}
