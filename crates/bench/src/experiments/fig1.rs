//! Figure 1 + Tables 1–2: motivation. Three standalone NFs share one core
//! under each vanilla kernel scheduler; no NFVnice. Shows that no stock
//! scheduler provides rate-cost proportional fairness, and reproduces the
//! voluntary/involuntary context-switch signatures.

use crate::util::{mpps, sim, RunLength, Table};
use nfvnice::{NfSpec, NfvniceConfig, Policy, Report};

/// Which NF cost profile to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// All three NFs cost ~250 cycles (Fig 1a / Table 1).
    Homogeneous,
    /// Costs 500 / 250 / 50 cycles (Fig 1b / Table 2).
    Heterogeneous,
}

fn costs(v: Variant) -> [u64; 3] {
    match v {
        Variant::Homogeneous => [250, 250, 250],
        Variant::Heterogeneous => [500, 250, 50],
    }
}

/// Offered load per NF in pps: even = 5/5/5 Mpps, uneven = 6/6/3 Mpps.
fn loads(even: bool) -> [f64; 3] {
    if even {
        [5e6, 5e6, 5e6]
    } else {
        [6e6, 6e6, 3e6]
    }
}

/// One cell of the experiment: 3 standalone NFs, one core, one scheduler.
pub fn run_cell(policy: Policy, v: Variant, even: bool, len: RunLength) -> Report {
    let mut s = sim(1, policy, NfvniceConfig::off());
    let cs = costs(v);
    let ls = loads(even);
    for i in 0..3 {
        let nf = s.add_nf(NfSpec::new(format!("NF{}", i + 1), 0, cs[i]));
        let chain = s.add_chain(&[nf]);
        s.add_udp(chain, ls[i], 64);
    }
    let cell = format!(
        "{}/{:?}/{}",
        policy.label(),
        v,
        if even { "even" } else { "uneven" }
    );
    crate::util::run_logged("fig1", &cell, &mut s, len.steady)
}

/// The three schedulers Fig 1 compares (RR uses the kernel-default 100 ms
/// quantum).
fn policies() -> Vec<Policy> {
    vec![Policy::CfsNormal, Policy::CfsBatch, Policy::rr_100ms()]
}

/// Run the full figure + tables, returning rendered text.
pub fn run(len: RunLength) -> String {
    let mut out = String::new();
    for v in [Variant::Homogeneous, Variant::Heterogeneous] {
        out.push_str(&format!(
            "\n=== Fig 1{} — {:?} NFs: per-NF throughput (Mpps) and CPU share ===\n",
            if v == Variant::Homogeneous { 'a' } else { 'b' },
            v
        ));
        let mut tput = Table::new(&[
            "load", "sched", "NF1 Mpps", "NF2 Mpps", "NF3 Mpps", "NF1 cpu%", "NF2 cpu%", "NF3 cpu%",
        ]);
        let mut csw = Table::new(&[
            "load",
            "sched",
            "NF1 cswch/s",
            "NF1 nvcswch/s",
            "NF2 cswch/s",
            "NF2 nvcswch/s",
            "NF3 cswch/s",
            "NF3 nvcswch/s",
        ]);
        for even in [true, false] {
            for policy in policies() {
                let r = run_cell(policy, v, even, len);
                let label = if even { "even" } else { "uneven" };
                tput.row(vec![
                    label.into(),
                    policy.label(),
                    mpps(r.nfs[0].output_rate_pps),
                    mpps(r.nfs[1].output_rate_pps),
                    mpps(r.nfs[2].output_rate_pps),
                    format!("{:.0}", r.nfs[0].cpu_util * 100.0),
                    format!("{:.0}", r.nfs[1].cpu_util * 100.0),
                    format!("{:.0}", r.nfs[2].cpu_util * 100.0),
                ]);
                csw.row(vec![
                    label.into(),
                    policy.label(),
                    format!("{:.0}", r.nfs[0].cswch_per_sec),
                    format!("{:.0}", r.nfs[0].nvcswch_per_sec),
                    format!("{:.0}", r.nfs[1].cswch_per_sec),
                    format!("{:.0}", r.nfs[1].nvcswch_per_sec),
                    format!("{:.0}", r.nfs[2].cswch_per_sec),
                    format!("{:.0}", r.nfs[2].nvcswch_per_sec),
                ]);
            }
        }
        out.push_str(&tput.render());
        out.push_str(&format!(
            "\n--- Table {} — context switches ---\n",
            if v == Variant::Homogeneous { 1 } else { 2 }
        ));
        out.push_str(&csw.render());
    }
    out
}
