//! Figure 14: efficient storage I/O.
//!
//! Two UDP flows share a 2-NF chain; the second NF logs packets of flow 1
//! to disk. The baseline performs blocking (synchronous, per-batch)
//! writes; NFVnice's `libnf` uses batched asynchronous writes with double
//! buffering, so the NF — and therefore flow 2, which does no I/O — keeps
//! making progress while the device works. Aggregate throughput vs frame
//! size, BATCH scheduler.

use crate::util::{line_rate, sim, RunLength, Table};
use nfvnice::{IoMode, NfIoSpec, NfSpec, NfvniceConfig, Policy, Report};

/// Frame sizes swept by the figure.
pub const SIZES: [u32; 5] = [64, 128, 256, 512, 1024];

/// One (frame size, async?) cell.
pub fn run_cell(frame: u32, async_io: bool, len: RunLength) -> Report {
    let variant = if async_io {
        NfvniceConfig::full()
    } else {
        NfvniceConfig::off()
    };
    let mut s = sim(1, Policy::CfsBatch, variant);
    let mode = if async_io {
        IoMode::Async {
            buf_size: 64 * 1024,
        }
    } else {
        IoMode::Sync
    };
    let nf1 = s.add_nf(NfSpec::new("fwd", 0, 250));
    let nf2 = s.add_nf(NfSpec::new("logger", 0, 300).with_io(NfIoSpec {
        bytes_per_packet: frame as u64,
        mode,
    }));
    // Two flows with per-flow chains; only flow 1 triggers I/O.
    let c1 = s.add_chain(&[nf1, nf2]);
    let c2 = s.add_chain(&[nf1, nf2]);
    let f1 = s.add_udp(c1, line_rate(frame) / 2.0, frame);
    s.add_udp(c2, line_rate(frame) / 2.0, frame);
    s.mark_io_flow(f1);
    let cell = format!("frame{frame}/{}", if async_io { "async" } else { "sync" });
    crate::util::run_logged("fig14", &cell, &mut s, len.steady)
}

/// Full figure.
pub fn run(len: RunLength) -> String {
    let mut out = String::new();
    out.push_str("\n=== Fig 14 — async I/O: aggregate throughput (Mpps) vs frame size ===\n");
    let mut t = Table::new(&[
        "frame",
        "Default (sync writes)",
        "NFVnice (async writes)",
        "io-flow Mpps (Def)",
        "io-flow Mpps (Nice)",
        "other-flow Mpps (Def)",
        "other-flow Mpps (Nice)",
    ]);
    for frame in SIZES {
        let d = run_cell(frame, false, len);
        let n = run_cell(frame, true, len);
        t.row(vec![
            format!("{frame}B"),
            format!("{:.3}", d.total_delivered_pps / 1e6),
            format!("{:.3}", n.total_delivered_pps / 1e6),
            format!("{:.3}", d.flows[0].delivered_pps / 1e6),
            format!("{:.3}", n.flows[0].delivered_pps / 1e6),
            format!("{:.3}", d.flows[1].delivered_pps / 1e6),
            format!("{:.3}", n.flows[1].delivered_pps / 1e6),
        ]);
    }
    out.push_str(&t.render());
    out
}
