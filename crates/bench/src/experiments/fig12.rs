//! Figure 12: workload heterogeneity. Three homogeneous NFs; workload
//! "Type k" has k equal-rate flows, each traversing all three NFs in a
//! different random order — so every flow has a different bottleneck and
//! per-flow chains exercise chain-granularity backpressure.

use crate::util::{all_policies, line_rate, mpps, sim, RunLength, Table};
use nfv_des::SimRng;
use nfvnice::{NfSpec, NfvniceConfig, Policy, Report};

/// One (type, scheduler, variant) cell. `k` is the number of flows.
pub fn run_cell(k: usize, policy: Policy, variant: NfvniceConfig, len: RunLength) -> Report {
    let mut s = sim(1, policy, variant);
    let nfs: Vec<_> = (0..3)
        .map(|i| s.add_nf(NfSpec::new(format!("NF{}", i + 1), 0, 300)))
        .collect();
    // Deterministic random orders, distinct per flow where possible.
    let mut rng = SimRng::seed_from_u64(0xF1612 + k as u64);
    let rate = line_rate(64) / k as f64;
    for _ in 0..k {
        let mut order = nfs.clone();
        rng.shuffle(&mut order);
        let chain = s.add_chain(&order);
        s.add_udp(chain, rate, 64);
    }
    let cell = format!("k{k}/{}/{}", policy.label(), variant.label());
    crate::util::run_logged("fig12", &cell, &mut s, len.steady)
}

/// Full figure: aggregate throughput per workload type.
pub fn run(len: RunLength) -> String {
    let mut out = String::new();
    out.push_str(
        "\n=== Fig 12 — workload heterogeneity: k flows, random NF order per flow (Mpps) ===\n",
    );
    let mut header = vec!["type".to_string()];
    for p in all_policies() {
        header.push(format!("{} Def", p.label()));
    }
    for p in all_policies() {
        header.push(format!("{} Nice", p.label()));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);
    for k in 1..=6 {
        let mut cells = vec![format!("Type {k}")];
        for policy in all_policies() {
            let r = run_cell(k, policy, NfvniceConfig::off(), len);
            cells.push(mpps(r.total_delivered_pps));
        }
        for policy in all_policies() {
            let r = run_cell(k, policy, NfvniceConfig::full(), len);
            cells.push(mpps(r.total_delivered_pps));
        }
        t.row(cells);
    }
    out.push_str(&t.render());
    out
}
