//! Figure 15: dynamic CPU tuning and fairness.
//!
//! (a) Two NFs with a 1:3 cost ratio share a core at equal arrival rates;
//!     NF1's cost triples during the middle third of the run. NFVnice's
//!     weight updates track the change (75/25 → 50/50 → 75/25) while
//!     NORMAL stays pinned at 50/50.
//! (b) Jain's fairness index across diversity levels 1..6 (cost ratios
//!     1:2:5:20:40:60).
//! (c) CPU share vs per-flow throughput at diversity 6.

use crate::util::{sim, RunLength, Table};
use nfvnice::{Action, CostModel, Duration, NfSpec, NfvniceConfig, Policy, Report, SimTime};

/// Fig 15a timeline in paper-seconds.
pub const PHASE1_END: u64 = 31;
/// When NF1's cost reverts.
pub const PHASE2_END: u64 = 60;
/// Total run.
pub const TOTAL: u64 = 90;

/// Run Fig 15a for one variant; returns the report with CPU series.
pub fn run_15a_cell(variant: NfvniceConfig, len: RunLength) -> Report {
    let scale = len.timeline_scale;
    let mut s = sim(1, Policy::CfsNormal, variant);
    // Costs ×10, rates ÷10 relative to the paper keeps utilization (and
    // therefore the figure) identical while shrinking event counts.
    let nf1 = s.add_nf(NfSpec::new("NF1", 0, 5_000));
    let nf2 = s.add_nf(NfSpec::new("NF2", 0, 15_000));
    let c1 = s.add_chain(&[nf1]);
    let c2 = s.add_chain(&[nf2]);
    // Both NFs individually overloaded in every phase (NF1: 58 % demand at
    // its cheap cost, 173 % when tripled), so NORMAL pins at 50/50 while
    // NFVnice tracks the 1:3 → 1:1 → 1:3 load ratio.
    s.add_udp(c1, 300_000.0, 64);
    s.add_udp(c2, 300_000.0, 64);
    s.at(
        SimTime::from_millis(PHASE1_END * 1000 / scale),
        Action::SetCost(nf1, CostModel::Fixed(15_000)),
    );
    s.at(
        SimTime::from_millis(PHASE2_END * 1000 / scale),
        Action::SetCost(nf1, CostModel::Fixed(5_000)),
    );
    let cell = format!("15a/{}", variant.label());
    crate::util::run_logged(
        "fig15",
        &cell,
        &mut s,
        Duration::from_millis(TOTAL * 1000 / scale),
    )
}

/// Diversity-level setup shared by 15b and 15c: `level` NFs with cost
/// ratios 1:2:5:20:40:60, equal arrival rates, one core.
pub fn run_diversity_cell(level: usize, variant: NfvniceConfig, len: RunLength) -> Report {
    const RATIOS: [u64; 6] = [1, 2, 5, 20, 40, 60];
    let mut s = sim(1, Policy::CfsNormal, variant);
    // base 500 cycles; rate chosen so the core is overloaded at level 1+.
    for (i, &ratio) in RATIOS.iter().enumerate().take(level) {
        let nf = s.add_nf(NfSpec::new(format!("NF{}", i + 1), 0, 500 * ratio));
        let chain = s.add_chain(&[nf]);
        s.add_udp(chain, 2_000_000.0 / level as f64, 64);
    }
    let cell = format!("diversity{level}/{}", variant.label());
    crate::util::run_logged("fig15", &cell, &mut s, len.steady)
}

/// Render all three parts.
pub fn run(len: RunLength) -> String {
    let mut out = String::new();

    out.push_str("\n=== Fig 15a — dynamic CPU weight adaptation (CPU % per second) ===\n");
    let d = run_15a_cell(NfvniceConfig::off(), len);
    let n = run_15a_cell(NfvniceConfig::full(), len);
    let mut ta = Table::new(&[
        "sec",
        "NF1% (NORMAL)",
        "NF2% (NORMAL)",
        "NF1% (NFVnice)",
        "NF2% (NFVnice)",
    ]);
    for sec in 0..d.series.cpu_pct[0].len() {
        ta.row(vec![
            format!("{}", (sec as u64 + 1) * len.timeline_scale),
            format!("{:.0}", d.series.cpu_pct[0][sec]),
            format!("{:.0}", d.series.cpu_pct[1][sec]),
            format!("{:.0}", n.series.cpu_pct[0][sec]),
            format!("{:.0}", n.series.cpu_pct[1][sec]),
        ]);
    }
    out.push_str(&ta.render());

    out.push_str("\n=== Fig 15b — Jain's fairness index vs diversity level ===\n");
    let mut tb = Table::new(&["level", "NORMAL", "NFVnice"]);
    let mut last: Option<(Report, Report)> = None;
    for level in 1..=6 {
        let d = run_diversity_cell(level, NfvniceConfig::off(), len);
        let n = run_diversity_cell(level, NfvniceConfig::full(), len);
        tb.row(vec![
            format!("{level}"),
            format!("{:.3}", d.jain_over_flows()),
            format!("{:.3}", n.jain_over_flows()),
        ]);
        last = Some((d, n));
    }
    out.push_str(&tb.render());

    out.push_str("\n=== Fig 15c — CPU share and throughput at diversity 6 ===\n");
    let (d, n) = last.unwrap();
    let mut tc = Table::new(&[
        "NF",
        "cpu% (NORMAL)",
        "kpps (NORMAL)",
        "cpu% (NFVnice)",
        "kpps (NFVnice)",
        "shares (NFVnice)",
    ]);
    for i in 0..6 {
        tc.row(vec![
            format!("NF{}", i + 1),
            format!("{:.1}", d.nfs[i].cpu_util * 100.0),
            format!("{:.1}", d.flows[i].delivered_pps / 1e3),
            format!("{:.1}", n.nfs[i].cpu_util * 100.0),
            format!("{:.1}", n.flows[i].delivered_pps / 1e3),
            format!("{}", n.nfs[i].final_shares),
        ]);
    }
    out.push_str(&tc.render());
    out
}
