//! SLO experiment: latency-budget scheduling vs NFVnice rate-cost shares.
//!
//! One core hosts a short interactive chain (Low→Med, 50 kpps — far below
//! its standalone capacity) next to a bulk chain driven at ~6× overload.
//! The interactive chain carries a 500 µs end-to-end latency budget. The
//! rate-cost schedulers weight the bulk chain's NFs *up* (their queues are
//! long and their packets expensive), so the interactive chain's tail
//! latency is hostage to the bulk chain's slices. The SLO policy instead
//! derives per-NF deadlines from the chain budget
//! (`Simulation::set_chain_budget`), so interactive packets preempt bulk
//! work the moment they arrive and the p99 holds inside the budget.
//!
//! Table: per (scheduler × chain) delivered rate and p50/p99/p999, plus a
//! MET/MISS verdict against the interactive budget.

use crate::util::{run_logged, sim, RunLength, Table, LOW, MED};
use nfvnice::{Duration, NfSpec, NfvniceConfig, Policy, Report};

/// End-to-end latency budget configured on the interactive chain.
pub const INTERACTIVE_BUDGET: Duration = Duration::from_micros(500);

/// Index of the interactive chain in each cell's report.
pub const INTERACTIVE_CHAIN: usize = 0;

/// The schedulers the experiment pits against each other.
pub fn policies() -> Vec<Policy> {
    vec![
        Policy::CfsNormal,
        Policy::CfsBatch,
        Policy::Edf {
            period: Duration::from_millis(1),
        },
        Policy::Slo,
    ]
}

/// One scheduler cell: interactive (budgeted) + bulk (overloaded) chains
/// sharing a single core under full NFVnice.
pub fn run_cell(policy: Policy, len: RunLength) -> Report {
    let mut s = sim(1, policy, NfvniceConfig::full());
    let ia = s.add_nf(NfSpec::new("int-a", 0, LOW));
    let ib = s.add_nf(NfSpec::new("int-b", 0, MED));
    let ic = s.add_chain(&[ia, ib]);
    let ba = s.add_nf(NfSpec::new("bulk-a", 0, 4_000));
    let bb = s.add_nf(NfSpec::new("bulk-b", 0, 4_000));
    let bc = s.add_chain(&[ba, bb]);
    // The budget is configured unconditionally; only `Policy::Slo` derives
    // task deadlines from it, the others ignore it (that asymmetry *is*
    // the experiment).
    s.set_chain_budget(ic, INTERACTIVE_BUDGET);
    s.add_udp(ic, 50_000.0, 64);
    s.add_udp(bc, 2_000_000.0, 64);
    run_logged("slo", policy.label().as_str(), &mut s, len.steady)
}

/// Did this cell's interactive chain hold its p99 inside the budget?
pub fn meets_budget(r: &Report) -> bool {
    let p99 = r.chains[INTERACTIVE_CHAIN].latency_p99;
    r.chains[INTERACTIVE_CHAIN].delivered > 0 && p99 <= INTERACTIVE_BUDGET
}

fn us(d: Duration) -> String {
    format!("{:.1}", d.as_nanos() as f64 / 1e3)
}

/// Full experiment: the latency table across all four schedulers.
pub fn run(len: RunLength) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "\n=== SLO — 500 µs interactive budget vs bulk overload, one core \
         (budget = {} µs) ===\n",
        INTERACTIVE_BUDGET.as_nanos() / 1_000
    ));
    let mut t = Table::new(&[
        "sched", "chain", "kpps", "p50 µs", "p99 µs", "p999 µs", "budget",
    ]);
    for policy in policies() {
        let r = run_cell(policy, len);
        for (idx, name) in [(INTERACTIVE_CHAIN, "interactive"), (1, "bulk")] {
            let c = &r.chains[idx];
            let verdict = if idx == INTERACTIVE_CHAIN {
                if meets_budget(&r) {
                    "MET"
                } else {
                    "MISS"
                }
            } else {
                "-"
            };
            t.row(vec![
                policy.label(),
                name.to_string(),
                format!("{:.1}", c.pps / 1e3),
                us(c.latency_p50),
                us(c.latency_p99),
                us(c.latency_p999),
                verdict.to_string(),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}
