//! One module per paper table/figure; each exposes `run(RunLength) ->
//! String` producing the rows the paper reports, plus `run_cell` entry
//! points the criterion benches and integration tests reuse.

pub mod ablations;
pub mod coop;
pub mod elastic;
pub mod faults;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig7;
pub mod multicore;
pub mod scale;
pub mod slo;
pub mod tuning;
