//! Table 5 and Figs 8/9 + Table 6: multi-core chains.
//!
//! Table 5 — a 550/2200/4500-cycle chain, each NF pinned to its own core:
//! NFVnice's backpressure slashes upstream CPU burn while holding the
//! bottleneck throughput. Fig 9/Table 6 — two chains sharing NF1 and NF4
//! over four cores: throttling chain 2 at entry frees NF1 for chain 1.

use crate::util::{human_count, line_rate, mpps, sim, RunLength, Table};
use nfvnice::{NfSpec, NfvniceConfig, Policy, Report};

/// One Table 5 run (Default uses NORMAL — the scheduler has no role when
/// NFs do not share cores).
pub fn run_table5_cell(variant: NfvniceConfig, len: RunLength) -> Report {
    let mut s = sim(3, Policy::CfsNormal, variant);
    let nf1 = s.add_nf(NfSpec::new("NF1", 0, 550));
    let nf2 = s.add_nf(NfSpec::new("NF2", 1, 2200));
    let nf3 = s.add_nf(NfSpec::new("NF3", 2, 4500));
    let chain = s.add_chain(&[nf1, nf2, nf3]);
    s.add_udp(chain, line_rate(64), 64);
    crate::util::run_logged("table5", variant.label(), &mut s, len.steady)
}

/// One Fig 9 / Table 6 run: two chains over four cores sharing NF1/NF4.
pub fn run_fig9_cell(variant: NfvniceConfig, len: RunLength) -> Report {
    let mut s = sim(4, Policy::CfsNormal, variant);
    let nf1 = s.add_nf(NfSpec::new("NF1", 0, 270));
    let nf2 = s.add_nf(NfSpec::new("NF2", 1, 120));
    let nf3 = s.add_nf(NfSpec::new("NF3", 2, 4500));
    let nf4 = s.add_nf(NfSpec::new("NF4", 3, 300));
    let chain1 = s.add_chain(&[nf1, nf2, nf4]);
    let chain2 = s.add_chain(&[nf1, nf3, nf4]);
    // Line rate split equally between the two flows.
    s.add_udp(chain1, line_rate(64) / 2.0, 64);
    s.add_udp(chain2, line_rate(64) / 2.0, 64);
    crate::util::run_logged("fig9", variant.label(), &mut s, len.steady)
}

/// Render Table 5.
pub fn run_table5(len: RunLength) -> String {
    let mut out = String::new();
    out.push_str(
        "\n=== Table 5 — 3-NF chain (550/2200/4500 cyc), one NF per core, line rate ===\n",
    );
    let mut t = Table::new(&[
        "variant",
        "NF",
        "svc rate",
        "drop rate (wasted)",
        "CPU util %",
    ]);
    for variant in [NfvniceConfig::off(), NfvniceConfig::full()] {
        let r = run_table5_cell(variant, len);
        for i in 0..3 {
            t.row(vec![
                variant.label().into(),
                r.nfs[i].name.clone(),
                format!("{}pps", human_count(r.nfs[i].svc_rate_pps)),
                format!("{}pps", human_count(r.nfs[i].wasted_rate_pps)),
                format!("{:.0}", r.nfs[i].cpu_util * 100.0),
            ]);
        }
        t.row(vec![
            variant.label().into(),
            "Aggregate".into(),
            format!("{} Mpps delivered", mpps(r.chains[0].pps)),
            format!(
                "{} entry-shed/s",
                human_count(r.entry_drops as f64 / r.wall.as_secs_f64())
            ),
            format!(
                "{:.0} (sum)",
                r.nfs.iter().map(|n| n.cpu_util * 100.0).sum::<f64>()
            ),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Render Fig 9 + Table 6.
pub fn run_fig9(len: RunLength) -> String {
    let mut out = String::new();
    out.push_str("\n=== Fig 9 / Table 6 — two chains sharing NF1 & NF4 across 4 cores ===\n");
    let mut t = Table::new(&[
        "variant",
        "chain1 Mpps",
        "chain2 Mpps",
        "NF1 svc",
        "NF1 cpu%",
        "NF2 cpu%",
        "NF3 cpu%",
        "NF4 cpu%",
        "wasted/s",
    ]);
    for variant in [NfvniceConfig::off(), NfvniceConfig::full()] {
        let r = run_fig9_cell(variant, len);
        t.row(vec![
            variant.label().into(),
            mpps(r.chains[0].pps),
            mpps(r.chains[1].pps),
            format!("{}pps", human_count(r.nfs[0].svc_rate_pps)),
            format!("{:.0}", r.nfs[0].cpu_util * 100.0),
            format!("{:.0}", r.nfs[1].cpu_util * 100.0),
            format!("{:.0}", r.nfs[2].cpu_util * 100.0),
            format!("{:.0}", r.nfs[3].cpu_util * 100.0),
            human_count(r.total_wasted_drops as f64 / r.wall.as_secs_f64()),
        ]);
    }
    out.push_str(&t.render());
    out
}
