//! §4.3.8: watermark tuning. Sweeps the HIGH_WATER_MARK with a fixed
//! margin of 20, then the margin at HIGH = 80, on the Low/Med/High chain
//! at line rate. Reports throughput, wasted work and throttle activations
//! — reproducing the paper's conclusion that HIGH ≈ 80 % / margin ≈ 20
//! is the sweet spot (lower HIGH under-utilizes, higher HIGH under-buffers,
//! tiny margins flap).

use crate::util::{human_count, line_rate, mpps, sim, RunLength, Table, HIGH, LOW, MED};
use nfvnice::{BackpressureConfig, NfSpec, NfvniceConfig, Policy, Report};

/// One (high, low) watermark cell on the canonical chain.
pub fn run_cell(high_pct: u32, low_pct: u32, len: RunLength) -> Report {
    let mut variant = NfvniceConfig::full();
    variant.bp = BackpressureConfig {
        high_pct,
        low_pct,
        ..BackpressureConfig::default()
    };
    let mut s = sim(1, Policy::CfsBatch, variant);
    // Small rings make the watermark placement matter: with OpenNetVM's
    // 16 K rings every setting leaves enough slack to hide the thresholds,
    // but at 512 descriptors the paper's trade-off appears — low HIGH
    // under-buffers the bottleneck (under-utilization), high HIGH leaves no
    // headroom for in-flight packets (upstream drops).
    const RING: usize = 512;
    let a = s.add_nf(NfSpec::new("NF1", 0, LOW).with_rings(RING, RING));
    let b = s.add_nf(NfSpec::new("NF2", 0, MED).with_rings(RING, RING));
    let c = s.add_nf(NfSpec::new("NF3", 0, HIGH).with_rings(RING, RING));
    let chain = s.add_chain(&[a, b, c]);
    s.add_udp(chain, line_rate(64), 64);
    let cell = format!("high{high_pct}/low{low_pct}");
    crate::util::run_logged("tuning", &cell, &mut s, len.steady)
}

/// Full sweep.
pub fn run(len: RunLength) -> String {
    let mut out = String::new();
    out.push_str("\n=== §4.3.8 — HIGH_WATER_MARK sweep (margin 20) ===\n");
    let mut t = Table::new(&[
        "HIGH%",
        "LOW%",
        "Mpps",
        "wasted/s",
        "throttles/s",
        "entry-shed/s",
    ]);
    for high in [50u32, 60, 70, 80, 90, 95] {
        let low = high.saturating_sub(20);
        let r = run_cell(high, low, len);
        let secs = r.wall.as_secs_f64();
        t.row(vec![
            format!("{high}"),
            format!("{low}"),
            mpps(r.chains[0].pps),
            human_count(r.total_wasted_drops as f64 / secs),
            format!("{:.0}", r.throttle_events as f64 / secs),
            human_count(r.entry_drops as f64 / secs),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n=== §4.3.8 — margin sweep (HIGH = 80) ===\n");
    let mut t2 = Table::new(&["margin", "Mpps", "wasted/s", "throttles/s"]);
    for margin in [1u32, 5, 10, 20, 30, 40] {
        let r = run_cell(80, 80 - margin, len);
        let secs = r.wall.as_secs_f64();
        t2.row(vec![
            format!("{margin}"),
            mpps(r.chains[0].pps),
            human_count(r.total_wasted_drops as f64 / secs),
            format!("{:.0}", r.throttle_events as f64 / secs),
        ]);
    }
    out.push_str(&t2.render());
    out
}
