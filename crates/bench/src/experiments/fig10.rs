//! Figure 10: variable per-packet processing cost.
//!
//! Same chain as Fig 7, but every packet's cost at each NF is drawn
//! independently from {120, 270, 550} cycles. Each packet carries a cost
//! class in [0, 27); NF *i* reads base-3 digit *i*, so the three NFs see
//! independent per-packet costs (the paper's "9 variants of total cost").

use crate::util::{all_policies, all_variants, mpps, sim, RunLength, Table};
use nfvnice::{CostClassGen, CostModel, NfSpec, NfvniceConfig, Policy, Report};

const COSTS: [u64; 3] = [120, 270, 550];

/// Cost table for NF `i`: class → cycles via base-3 digit `i`.
fn table_for_nf(i: u32) -> CostModel {
    let table: Vec<u64> = (0..27u32)
        .map(|class| COSTS[((class / 3u32.pow(i)) % 3) as usize])
        .collect();
    CostModel::PerClass(table)
}

/// One (scheduler, variant) cell.
pub fn run_cell(policy: Policy, variant: NfvniceConfig, len: RunLength) -> Report {
    let mut s = sim(1, policy, variant);
    let a = s.add_nf(NfSpec::new("NF1", 0, 0).with_cost(table_for_nf(0)));
    let b = s.add_nf(NfSpec::new("NF2", 0, 0).with_cost(table_for_nf(1)));
    let c = s.add_nf(NfSpec::new("NF3", 0, 0).with_cost(table_for_nf(2)));
    let chain = s.add_chain(&[a, b, c]);
    s.add_udp_with(chain, crate::util::line_rate(64), 64, |f| {
        f.with_cost_class(CostClassGen::Uniform(27))
    });
    let cell = format!("{}/{}", policy.label(), variant.label());
    crate::util::run_logged("fig10", &cell, &mut s, len.steady)
}

/// Full figure.
pub fn run(len: RunLength) -> String {
    let mut out = String::new();
    out.push_str(
        "\n=== Fig 10 — variable per-packet cost (120/270/550 cyc drawn per packet per NF) ===\n",
    );
    let mut t = Table::new(&["sched", "Default", "CGroup", "OnlyBKPR", "NFVnice"]);
    for policy in all_policies() {
        let mut cells = vec![policy.label()];
        for variant in all_variants() {
            let r = run_cell(policy, variant, len);
            cells.push(mpps(r.chains[0].pps));
        }
        t.row(cells);
    }
    out.push_str(&t.render());
    out
}
