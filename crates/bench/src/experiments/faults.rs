//! Fault injection and failure recovery: crash the bottleneck NF of the
//! canonical Low/Med/High chain mid-run and measure goodput through the
//! outage and after the recovery policy respawns it.
//!
//! Not a paper figure — NFVnice §3 assumes NFs stay up — but the manager
//! behaviors it exercises (clearing a dead bottleneck's backpressure
//! marks, shedding doomed packets at entry, re-learning shares after a
//! restart) are what keep the paper's mechanisms safe under real
//! deployments' failures. Each cell reports the chain's goodput in the
//! pre-fault third of the run and in the final third (after recovery has
//! had time to act), so the "recovered %" column is a direct measure of
//! how completely the system heals.

use crate::util::{mpps, run_logged, sim_config, RunLength, Table, HIGH, LOW, MED};
use nfvnice::{
    Duration, FaultKind, NfId, NfSpec, NfvniceConfig, Policy, Report, SimConfig, SimTime,
    Simulation,
};

/// Offered load for the chain (pps). Deliberately above the bottleneck's
/// capacity so backpressure is active when the fault strikes — the
/// interesting failure mode is crashing an NF that holds throttle marks.
const RATE: f64 = 3_200_000.0;

/// One cell's fault scenario.
#[derive(Clone, Copy)]
pub struct Scenario {
    /// Fault applied to the bottleneck (High) NF at one third of the run.
    pub fault: Option<FaultKind>,
    /// Recovery policy on/off.
    pub recovery: bool,
    /// Liveness watchdog threshold (monitor ticks); 0 = off.
    pub stall_ticks: u32,
}

fn config(sc: Scenario, steady: Duration) -> SimConfig {
    let mut cfg = sim_config(1, Policy::CfsNormal, NfvniceConfig::full());
    cfg.faults.recovery = sc.recovery;
    cfg.faults.stall_ticks = sc.stall_ticks;
    if let Some(kind) = sc.fault {
        let t = SimTime::ZERO + Duration::from_nanos(steady.as_nanos() / 3);
        // The bottleneck NF is deployed third: NfId(2).
        cfg.faults = cfg.faults.with_fault(t, NfId(2), kind);
    }
    cfg
}

fn build(sc: Scenario, steady: Duration) -> Simulation {
    let mut s = Simulation::new(config(sc, steady));
    let low = s.add_nf(NfSpec::new("NF1-low", 0, LOW));
    let med = s.add_nf(NfSpec::new("NF2-med", 0, MED));
    let high = s.add_nf(NfSpec::new("NF3-high", 0, HIGH));
    let chain = s.add_chain(&[low, med, high]);
    s.add_udp(chain, RATE, 64);
    s
}

/// Chain-0 deliveries of a fresh scenario run truncated at `t` (the
/// deterministic prefix property: a shorter run replays the first `t` of
/// the full run exactly).
fn delivered_upto(sc: Scenario, steady: Duration, t: Duration) -> u64 {
    build(sc, steady).run(t).chains[0].delivered
}

/// Run one named cell: the full-length logged run plus two prefix probes
/// that window the goodput into thirds.
pub fn run_cell(name: &str, sc: Scenario, len: RunLength) -> (Report, f64, f64) {
    let steady = len.steady;
    let third = Duration::from_nanos(steady.as_nanos() / 3);
    let two_thirds = Duration::from_nanos(steady.as_nanos() * 2 / 3);
    let d1 = delivered_upto(sc, steady, third);
    let d2 = delivered_upto(sc, steady, two_thirds);
    let mut s = build(sc, steady);
    let r = run_logged("faults", name, &mut s, steady);
    let span = third.as_secs_f64();
    let pre_pps = d1 as f64 / span;
    let post_pps = (r.chains[0].delivered - d2) as f64 / span;
    (r, pre_pps, post_pps)
}

/// The cell set: healthy baseline, bottleneck crash with and without the
/// recovery policy, a watchdog-detected stall, and a transient slowdown.
pub fn cells() -> Vec<(&'static str, Scenario)> {
    vec![
        (
            "baseline",
            Scenario {
                fault: None,
                recovery: true,
                stall_ticks: 0,
            },
        ),
        (
            "crash+recover",
            Scenario {
                fault: Some(FaultKind::Crash),
                recovery: true,
                stall_ticks: 0,
            },
        ),
        (
            "crash-norecover",
            Scenario {
                fault: Some(FaultKind::Crash),
                recovery: false,
                stall_ticks: 0,
            },
        ),
        (
            "stall+watchdog",
            Scenario {
                fault: Some(FaultKind::Stall),
                recovery: true,
                stall_ticks: 5,
            },
        ),
        (
            "slowdown4x",
            Scenario {
                fault: None, // added below: needs the run length
                recovery: true,
                stall_ticks: 0,
            },
        ),
    ]
}

/// Full experiment output.
pub fn run(len: RunLength) -> String {
    let mut out = String::new();
    out.push_str(
        "\n=== Faults — bottleneck crash/stall/slowdown in the Low/Med/High chain \
         (goodput Mpps, pre-fault third vs final third) ===\n",
    );
    let mut t = Table::new(&[
        "cell",
        "pre-fault",
        "final-third",
        "recovered%",
        "crashes",
        "restarts",
        "stalls",
        "down-drops",
    ]);
    for (name, mut sc) in cells() {
        if name == "slowdown4x" {
            sc.fault = Some(FaultKind::Slowdown {
                factor: 4,
                duration: Duration::from_nanos(len.steady.as_nanos() / 6),
            });
        }
        let (r, pre, post) = run_cell(name, sc, len);
        let recovered = if pre > 0.0 { post / pre * 100.0 } else { 0.0 };
        t.row(vec![
            name.to_string(),
            mpps(pre),
            mpps(post),
            format!("{recovered:.1}"),
            r.nf_crashes.to_string(),
            r.nf_restarts.to_string(),
            r.nf_stalls_detected.to_string(),
            r.nf_down_drops.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nA dead bottleneck must not wedge its chains: with recovery the final \
         third returns to the pre-fault rate; without it, entry admission sheds \
         the dead chain's packets instead of leaking mempool or throttling forever.\n",
    );
    out
}
