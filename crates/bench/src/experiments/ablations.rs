//! Design-choice ablations (DESIGN.md D1–D5): each knob the NFVnice design
//! fixes is compared against its naive alternative on a workload that
//! exposes the difference.

use crate::util::{human_count, line_rate, mpps, sim_config, RunLength, Table, HIGH, LOW, MED};
use nfvnice::{
    BackpressureConfig, CostClassGen, CostModel, Duration, NfSpec, NfvniceConfig, Policy, Report,
    SimConfig, Simulation,
};

fn lmh_chain(cell: &str, cfg: SimConfig, variable_cost: bool, len: RunLength) -> Report {
    let mut s = Simulation::new(cfg);
    let costs = [LOW, MED, HIGH];
    let nfs: Vec<_> = costs
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let spec = if variable_cost {
                let table: Vec<u64> = (0..27u32)
                    .map(|class| costs[((class / 3u32.pow(i as u32)) % 3) as usize])
                    .collect();
                NfSpec::new(format!("NF{}", i + 1), 0, 0).with_cost(CostModel::PerClass(table))
            } else {
                NfSpec::new(format!("NF{}", i + 1), 0, c)
            };
            s.add_nf(spec)
        })
        .collect();
    let chain = s.add_chain(&nfs);
    s.add_udp_with(chain, line_rate(64), 64, |f| {
        if variable_cost {
            f.with_cost_class(CostClassGen::Uniform(27))
        } else {
            f
        }
    });
    crate::util::run_logged("ablations", cell, &mut s, len.steady)
}

/// D1 — separating overload detection (TX threads) from control (wakeup
/// thread). The knob we can turn is the control loop's reaction delay:
/// the paper argues the decoupled wakeup thread reacts within its scan
/// period without burdening the data path. Sweep the scan period.
fn d1(len: RunLength) -> String {
    let mut t = Table::new(&["wakeup scan", "Mpps", "wasted/s", "throttles/s"]);
    for us in [1u64, 10, 100, 1000] {
        let mut cfg = sim_config(1, Policy::CfsBatch, NfvniceConfig::full());
        cfg.wakeup_period = Duration::from_micros(us);
        let r = lmh_chain(&format!("d1/scan{us}us"), cfg, false, len);
        let secs = r.wall.as_secs_f64();
        t.row(vec![
            format!("{us}us"),
            mpps(r.chains[0].pps),
            human_count(r.total_wasted_drops as f64 / secs),
            format!("{:.0}", r.throttle_events as f64 / secs),
        ]);
    }
    format!(
        "\n--- D1: control-loop (wakeup scan) period ---\n{}",
        t.render()
    )
}

/// D2 — hysteresis. Compare the default HIGH/LOW + queuing-time gate
/// against a single threshold (margin 0) and no time gate: mode flapping
/// shows up as orders-of-magnitude more throttle transitions.
fn d2(len: RunLength) -> String {
    let mut t = Table::new(&["config", "Mpps", "throttles/s", "entry-shed/s"]);
    let cases: Vec<(&str, BackpressureConfig)> = vec![
        ("HIGH80/LOW60 + 100us gate", BackpressureConfig::default()),
        (
            "single threshold (margin 0)",
            BackpressureConfig {
                high_pct: 80,
                low_pct: 80,
                qtime_threshold: Duration::from_micros(100),
            },
        ),
        (
            "no queuing-time gate",
            BackpressureConfig {
                high_pct: 80,
                low_pct: 60,
                qtime_threshold: Duration::ZERO,
            },
        ),
    ];
    for (label, bp) in cases {
        let mut variant = NfvniceConfig::full();
        variant.bp = bp;
        let mut cfg = sim_config(1, Policy::CfsBatch, variant);
        // Small rings accentuate flapping.
        cfg.platform.mempool_capacity = 65_536;
        let mut s = Simulation::new(cfg);
        const RING: usize = 512;
        let a = s.add_nf(NfSpec::new("NF1", 0, LOW).with_rings(RING, RING));
        let b = s.add_nf(NfSpec::new("NF2", 0, MED).with_rings(RING, RING));
        let c = s.add_nf(NfSpec::new("NF3", 0, HIGH).with_rings(RING, RING));
        let chain = s.add_chain(&[a, b, c]);
        s.add_udp(chain, line_rate(64), 64);
        let cell = format!("d2/{label}");
        let r = crate::util::run_logged("ablations", &cell, &mut s, len.steady);
        let secs = r.wall.as_secs_f64();
        t.row(vec![
            label.into(),
            mpps(r.chains[0].pps),
            format!("{:.0}", r.throttle_events as f64 / secs),
            human_count(r.entry_drops as f64 / secs),
        ]);
    }
    format!("\n--- D2: watermark hysteresis ---\n{}", t.render())
}

/// D3 — the median-over-100ms-window cost estimator vs a raw last-sample
/// estimator, under variable per-packet cost (the Fig 10 workload, where
/// bad estimates translate into bad weights).
fn d3(len: RunLength) -> String {
    let mut t = Table::new(&["estimator", "Mpps (CGroup only)", "cgroup writes/s"]);
    for (label, window) in [
        ("median over 100ms", Duration::from_millis(100)),
        ("last sample only", Duration::from_millis(1)),
    ] {
        let mut variant = NfvniceConfig::cgroups_only();
        variant.load.window = window;
        let cfg = sim_config(1, Policy::CfsBatch, variant);
        let r = lmh_chain(
            &format!("d3/window{}us", window.as_micros()),
            cfg,
            true,
            len,
        );
        let secs = r.wall.as_secs_f64();
        t.row(vec![
            label.into(),
            mpps(r.chains[0].pps),
            format!("{:.0}", r.cgroup_writes as f64 / secs),
        ]);
    }
    format!(
        "\n--- D3: service-time estimator under variable cost ---\n{}",
        t.render()
    )
}

/// D4 — weight-update granularity: writing cgroup shares every 1 ms vs the
/// paper's 10 ms. Each write costs ~5 µs of sysfs time; the table shows
/// the write volume the batching avoids.
fn d4(len: RunLength) -> String {
    let mut t = Table::new(&["weight period", "Mpps", "cgroup writes/s", "sysfs us/s"]);
    for ms in [1u64, 10, 100] {
        let mut variant = NfvniceConfig::full();
        variant.load.weight_period = Duration::from_millis(ms);
        let cfg = sim_config(1, Policy::CfsBatch, variant);
        let r = lmh_chain(&format!("d4/weight{ms}ms"), cfg, false, len);
        let secs = r.wall.as_secs_f64();
        let writes_per_s = r.cgroup_writes as f64 / secs;
        t.row(vec![
            format!("{ms}ms"),
            mpps(r.chains[0].pps),
            format!("{:.0}", writes_per_s),
            format!("{:.0}", writes_per_s * 5.0),
        ]);
    }
    format!("\n--- D4: cgroup write batching ---\n{}", t.render())
}

/// D5 — chain- vs flow-granularity throttling: Fig 13's mixed TCP/UDP
/// workload with per-flow chains (fine) vs a single shared chain id for
/// TCP and UDP (coarse — head-of-line blocking hits the TCP flow).
fn d5(len: RunLength) -> String {
    let mut t = Table::new(&["granularity", "TCP Mbps", "UDP agg Mbps"]);
    for fine in [true, false] {
        let mut cfg = sim_config(2, Policy::CfsBatch, NfvniceConfig::full());
        cfg.platform.mempool_capacity = 1 << 20;
        let mut s = Simulation::new(cfg);
        let nf1 = s.add_nf(NfSpec::new("NF1", 0, 120));
        let nf2 = s.add_nf(NfSpec::new("NF2", 0, 270));
        let nf3 = s.add_nf(NfSpec::new("NF3", 1, 4753));
        // Coarse granularity: TCP shares the UDP chain's prefix *chain id*
        // by riding the same 3-NF chain (its packets exit early is not
        // expressible, so model coarseness by placing TCP on the congested
        // chain id — exactly the head-of-line blocking fine granularity
        // avoids).
        let udp_chain = s.add_chain(&[nf1, nf2, nf3]);
        let tcp_chain = if fine {
            s.add_chain(&[nf1, nf2])
        } else {
            udp_chain
        };
        let tcp = s.add_tcp_with(tcp_chain, 1500, Duration::from_micros(100), |t| {
            t.with_max_cwnd(33.0)
        });
        for _ in 0..10 {
            let c = if fine {
                s.add_chain(&[nf1, nf2, nf3])
            } else {
                udp_chain
            };
            s.add_udp(c, 800_000.0, 64);
        }
        let cell = format!("d5/{}", if fine { "fine" } else { "coarse" });
        let r = crate::util::run_logged("ablations", &cell, &mut s, len.steady);
        let udp_mbps: f64 = r.flows.iter().skip(1).map(|f| f.mbps).sum();
        t.row(vec![
            if fine {
                "per-flow chains"
            } else {
                "shared chain id"
            }
            .into(),
            format!("{:.1}", r.flows[tcp.index()].mbps),
            format!("{:.1}", udp_mbps),
        ]);
    }
    format!(
        "\n--- D5: throttle granularity (head-of-line blocking) ---\n{}",
        t.render()
    )
}

/// All five ablations.
pub fn run(len: RunLength) -> String {
    let mut out = String::from("\n=== Design ablations (DESIGN.md D1–D5) ===\n");
    out.push_str(&d1(len));
    out.push_str(&d2(len));
    out.push_str(&d3(len));
    out.push_str(&d4(len));
    out.push_str(&d5(len));
    out
}
