//! Figure 16: longer service chains. Chain length 1..10 cycling through
//! Low/Med/High costs, either all on a single core (SC) or spread over
//! three cores round-robin (MC). Default vs NFVnice, BATCH scheduler.

use crate::util::{line_rate, mpps, sim, RunLength, Table, HIGH, LOW, MED};
use nfvnice::{NfSpec, NfvniceConfig, Policy, Report};

/// One (length, multicore?, variant) cell.
pub fn run_cell(length: usize, multicore: bool, variant: NfvniceConfig, len: RunLength) -> Report {
    let cores = if multicore { 3 } else { 1 };
    let mut s = sim(cores, Policy::CfsBatch, variant);
    let cost_cycle = [LOW, MED, HIGH];
    let nfs: Vec<_> = (0..length)
        .map(|i| {
            let core = if multicore { i % 3 } else { 0 };
            s.add_nf(NfSpec::new(format!("NF{}", i + 1), core, cost_cycle[i % 3]))
        })
        .collect();
    let chain = s.add_chain(&nfs);
    s.add_udp(chain, line_rate(64), 64);
    let cell = format!(
        "len{length}/{}/{}",
        if multicore { "3core" } else { "1core" },
        variant.label()
    );
    crate::util::run_logged("fig16", &cell, &mut s, len.steady)
}

/// Full figure.
pub fn run(len: RunLength) -> String {
    let mut out = String::new();
    out.push_str("\n=== Fig 16 — chain length sweep (Mpps), BATCH scheduler ===\n");
    let mut t = Table::new(&[
        "length",
        "SC Default",
        "SC NFVnice",
        "MC Default",
        "MC NFVnice",
        "MC cpu% Def",
        "MC cpu% Nice",
    ]);
    let total_cpu = |r: &Report| -> f64 { r.nfs.iter().map(|n| n.cpu_util * 100.0).sum() };
    for length in 1..=10 {
        let scd = run_cell(length, false, NfvniceConfig::off(), len);
        let scn = run_cell(length, false, NfvniceConfig::full(), len);
        let mcd = run_cell(length, true, NfvniceConfig::off(), len);
        let mcn = run_cell(length, true, NfvniceConfig::full(), len);
        t.row(vec![
            format!("{length}"),
            mpps(scd.chains[0].pps),
            mpps(scn.chains[0].pps),
            mpps(mcd.chains[0].pps),
            mpps(mcn.chains[0].pps),
            format!("{:.0}", total_cpu(&mcd)),
            format!("{:.0}", total_cpu(&mcn)),
        ]);
    }
    out.push_str(&t.render());
    out
}
