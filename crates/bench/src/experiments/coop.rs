//! Related-work experiment (§5): cooperative user-space scheduling
//! ("L-threads"). Under a pure cooperative FIFO scheduler an NF that
//! always has packets never yields — the chain starves. NFVnice's
//! backpressure supplies exactly the missing yield points ("NFVnice's
//! backpressure mechanism can still be effectively employed for such
//! cooperating threads"), making the cooperative class usable.

use crate::util::{line_rate, mpps, sim, RunLength, Table, HIGH, LOW, MED};
use nfvnice::{NfSpec, NfvniceConfig, Policy, Report};

/// One cell: the canonical Low/Med/High chain under a given variant of the
/// cooperative scheduler.
pub fn run_cell(variant: NfvniceConfig, len: RunLength) -> Report {
    let mut s = sim(1, Policy::Cooperative, variant);
    let a = s.add_nf(NfSpec::new("NF1", 0, LOW));
    let b = s.add_nf(NfSpec::new("NF2", 0, MED));
    let c = s.add_nf(NfSpec::new("NF3", 0, HIGH));
    let chain = s.add_chain(&[a, b, c]);
    s.add_udp(chain, line_rate(64), 64);
    crate::util::run_logged("coop", variant.label(), &mut s, len.steady)
}

/// Render the comparison.
pub fn run(len: RunLength) -> String {
    let mut out = String::new();
    out.push_str("\n=== §5 related work — cooperative (L-thread) scheduling, L/M/H chain ===\n");
    let mut t = Table::new(&[
        "variant", "Mpps", "wasted/s", "NF1 cpu%", "NF2 cpu%", "NF3 cpu%",
    ]);
    for variant in [NfvniceConfig::off(), NfvniceConfig::backpressure_only()] {
        let r = run_cell(variant, len);
        let secs = r.wall.as_secs_f64();
        t.row(vec![
            r.variant.clone(),
            mpps(r.chains[0].pps),
            format!("{:.0}", r.total_wasted_drops as f64 / secs),
            format!("{:.0}", r.nfs[0].cpu_util * 100.0),
            format!("{:.0}", r.nfs[1].cpu_util * 100.0),
            format!("{:.0}", r.nfs[2].cpu_util * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "Without preemption the upstream NF monopolizes the core and all its\n\
         work is wasted; backpressure's batch-boundary yields restore the chain.\n",
    );
    out
}
