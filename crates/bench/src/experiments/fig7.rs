//! Figure 7 + Tables 3–4: the headline single-core chain experiment.
//! A Low(120)–Med(270)–High(550) cycle chain shares one core; 64 B UDP at
//! 10 G line rate; four schedulers × four NFVnice variants.

use crate::util::{
    all_policies, all_variants, human_count, line_rate, mpps, sim, RunLength, Table,
};
use nfvnice::{NfSpec, NfvniceConfig, Policy, Report};

/// Run one (scheduler, variant) cell.
pub fn run_cell(policy: Policy, variant: NfvniceConfig, len: RunLength) -> Report {
    let mut s = sim(1, policy, variant);
    let low = s.add_nf(NfSpec::new("NF1-low", 0, 120));
    let med = s.add_nf(NfSpec::new("NF2-med", 0, 270));
    let high = s.add_nf(NfSpec::new("NF3-high", 0, 550));
    let chain = s.add_chain(&[low, med, high]);
    s.add_udp(chain, line_rate(64), 64);
    let cell = format!("{}/{}", policy.label(), variant.label());
    crate::util::run_logged("fig7", &cell, &mut s, len.steady)
}

/// Full figure + tables.
pub fn run(len: RunLength) -> String {
    let mut out = String::new();
    out.push_str("\n=== Fig 7 — chain throughput (Mpps), 3-NF Low/Med/High on one core ===\n");
    let mut fig = Table::new(&["sched", "Default", "CGroup", "OnlyBKPR", "NFVnice"]);
    let mut t3 = Table::new(&[
        "sched",
        "NF1 drop/s (Default)",
        "NF2 drop/s (Default)",
        "NF1 drop/s (NFVnice)",
        "NF2 drop/s (NFVnice)",
    ]);
    let mut t4 = Table::new(&[
        "sched",
        "variant",
        "NF1 delay",
        "NF1 runtime(ms)",
        "NF2 delay",
        "NF2 runtime(ms)",
        "NF3 delay",
        "NF3 runtime(ms)",
    ]);
    for policy in all_policies() {
        let mut cells = vec![policy.label()];
        let mut default_report = None;
        let mut nice_report = None;
        for variant in all_variants() {
            let r = run_cell(policy, variant, len);
            cells.push(mpps(r.chains[0].pps));
            match variant.label() {
                "Default" => default_report = Some(r),
                "NFVnice" => nice_report = Some(r),
                _ => {}
            }
        }
        fig.row(cells);
        let d = default_report.unwrap();
        let n = nice_report.unwrap();
        t3.row(vec![
            policy.label(),
            human_count(d.nfs[0].wasted_rate_pps),
            human_count(d.nfs[1].wasted_rate_pps),
            human_count(n.nfs[0].wasted_rate_pps),
            human_count(n.nfs[1].wasted_rate_pps),
        ]);
        for (label, r) in [("Default", &d), ("NFVnice", &n)] {
            t4.row(vec![
                policy.label(),
                label.into(),
                format!("{}", r.nfs[0].avg_sched_latency),
                format!("{:.1}", r.nfs[0].cpu_time.as_secs_f64() * 1e3),
                format!("{}", r.nfs[1].avg_sched_latency),
                format!("{:.1}", r.nfs[1].cpu_time.as_secs_f64() * 1e3),
                format!("{}", r.nfs[2].avg_sched_latency),
                format!("{:.1}", r.nfs[2].cpu_time.as_secs_f64() * 1e3),
            ]);
        }
    }
    out.push_str(&fig.render());
    out.push_str("\n--- Table 3 — wasted-work drop rate per second ---\n");
    out.push_str(&t3.render());
    out.push_str("\n--- Table 4 — scheduling latency and runtime ---\n");
    out.push_str(&t4.render());
    out
}
