//! Shared experiment plumbing: simulation builders, the paper's canonical
//! NF cost sets, line-rate arithmetic and table rendering.

use nfv_pkt::line_rate_pps;
use nfvnice::{
    trace_to_jsonl_into, Duration, FlowTableStats, MetricsRecorder, NfvniceConfig, Policy,
    QueueStats, Report, SanitizerConfig, SimConfig, Simulation,
};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Process-wide switch: when set (the `--sanitize` CLI flag), every
/// experiment config built by [`sim_config`] runs with the sim-sanitizer
/// in strict mode, so any invariant violation aborts the bench run.
static SANITIZE: AtomicBool = AtomicBool::new(false);

/// Enable the runtime sim-sanitizer for all subsequently built configs.
pub fn enable_sanitizer() {
    SANITIZE.store(true, Ordering::Relaxed);
}

/// Is the sim-sanitizer globally enabled?
pub fn sanitizer_enabled() -> bool {
    SANITIZE.load(Ordering::Relaxed)
}

/// `--trace`: record structured events and stream them as JSONL.
static OBS_TRACE: AtomicBool = AtomicBool::new(false);
/// `--metrics-out`: sample per-NF/per-chain time series every monitor tick.
static OBS_METRICS: AtomicBool = AtomicBool::new(false);
/// The open `--trace` output; in serial runs cells stream into it as they
/// finish so trace memory never accumulates across the suite.
static TRACE_OUT: Mutex<Option<std::io::BufWriter<std::fs::File>>> = Mutex::new(None);
/// Observability records of every cell, in suite order (committed by
/// [`run_suite`]; workers accumulate into [`THREAD_CELLS`] first).
static CELLS: Mutex<Vec<CellRecord>> = Mutex::new(Vec::new());
/// When set, [`run_logged`] buffers trace JSONL into the cell record
/// instead of streaming it: a parallel worker must not interleave its
/// bytes with other cells'. [`run_suite`] commits the buffers in order.
static BUFFER_TRACE: AtomicBool = AtomicBool::new(false);
/// Suite-level metadata for [`timings_json`]: worker count and whole-suite
/// wall clock, set by the driver after the suite finishes.
static SUITE_META: Mutex<Option<(usize, f64)>> = Mutex::new(None);

thread_local! {
    /// Cells finished by *this* thread since the last [`take_thread_cells`]
    /// drain. Keeps a parallel worker's records private until the suite
    /// runner commits them in suite order.
    static THREAD_CELLS: RefCell<Vec<CellRecord>> = const { RefCell::new(Vec::new()) };
}

/// One experiment cell's observability record.
struct CellRecord {
    experiment: String,
    cell: String,
    sim_secs: f64,
    /// Host wall-clock time of the cell (telemetry only — never fed back
    /// into the simulation).
    wall_ms: f64,
    trace_digest: u64,
    /// Event-queue self-profiling counters from the run's report. They are
    /// deterministic per queue backend, but live in the timings file (not
    /// the metrics document) so the metrics stay backend-independent.
    queue: QueueStats,
    /// Events popped and discarded as stale by the engine.
    stale_pops: u64,
    /// Flow-table self-profiling counters. Backend-dependent (probe
    /// lengths, rehashes), so like `queue` they live in the timings file
    /// only — the metrics document must stay identical across the
    /// sharded engine and the flat oracle.
    flow: FlowTableStats,
    /// Flows installed at the end of the run / evicted by aging over it.
    flows_active: u64,
    flows_evicted: u64,
    metrics: Option<MetricsRecorder>,
    /// Buffered trace JSONL (header line + events) when running under a
    /// parallel suite; `None` when streamed directly or tracing is off.
    trace_jsonl: Option<String>,
}

/// Enable structured tracing, streaming JSONL to `path`.
pub fn enable_trace(path: &str) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let f = std::fs::File::create(path)?;
    *TRACE_OUT.lock().unwrap() = Some(std::io::BufWriter::new(f));
    OBS_TRACE.store(true, Ordering::Relaxed);
    Ok(())
}

/// Enable metrics recording for all subsequently built configs.
pub fn enable_metrics() {
    OBS_METRICS.store(true, Ordering::Relaxed);
}

/// Run one experiment cell with observability: wall-clock timing, trace
/// streaming and metrics capture, keyed by `experiment`/`cell` labels.
/// Drop-in replacement for `Simulation::run` in experiment code.
pub fn run_logged(experiment: &str, cell: &str, s: &mut Simulation, dur: Duration) -> Report {
    // Wall-clock is bench telemetry only; it never enters the simulation.
    let t0 = std::time::Instant::now(); // nfv-lint: allow(wall-clock) -- per-cell telemetry, never enters the sim
    let r = s.run(dur);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut trace_jsonl = None;
    if OBS_TRACE.load(Ordering::Relaxed) {
        let events = s.take_trace();
        // One header object per cell, then the cell's raw event lines.
        let mut body = format!(
            "{{\"cell\":{{\"experiment\":{experiment:?},\"cell\":{cell:?},\"events\":{}}}}}\n",
            events.len()
        );
        trace_to_jsonl_into(&events, &mut body);
        if BUFFER_TRACE.load(Ordering::Relaxed) {
            trace_jsonl = Some(body);
        } else if let Some(w) = TRACE_OUT.lock().unwrap().as_mut() {
            let _ = w.write_all(body.as_bytes());
        }
    }
    let metrics = OBS_METRICS
        .load(Ordering::Relaxed)
        .then(|| s.take_metrics());
    let record = CellRecord {
        experiment: experiment.to_string(),
        cell: cell.to_string(),
        sim_secs: dur.as_secs_f64(),
        wall_ms,
        trace_digest: r.trace_digest,
        queue: r.queue,
        stale_pops: r.stale_pops,
        flow: r.flow,
        flows_active: r.flows_active,
        flows_evicted: r.flows_evicted,
        metrics,
        trace_jsonl,
    };
    THREAD_CELLS.with(|c| c.borrow_mut().push(record));
    r
}

/// Drain the cell records finished by the calling thread, in completion
/// order.
fn take_thread_cells() -> Vec<CellRecord> {
    THREAD_CELLS.with(|c| std::mem::take(&mut *c.borrow_mut()))
}

/// Commit a batch of finished cell records: flush any buffered trace
/// bytes to the `--trace` sink and append the records to the global,
/// suite-ordered ledger behind `metrics_json`/`timings_json`.
fn commit_cells(records: Vec<CellRecord>) {
    let mut cells = CELLS.lock().unwrap();
    for mut rec in records {
        if let Some(body) = rec.trace_jsonl.take() {
            if let Some(w) = TRACE_OUT.lock().unwrap().as_mut() {
                let _ = w.write_all(body.as_bytes());
            }
        }
        cells.push(rec);
    }
}

/// One named suite entry: label + experiment entry point.
pub type Exp = (&'static str, fn(RunLength) -> String);

/// Run `suite` with `jobs` worker threads, printing each entry's output
/// and committing its observability records **in suite order** — stdout,
/// `--trace`, `--metrics-out` and the timings file are byte-identical to
/// a `jobs == 1` run.
///
/// Each entry still builds and runs its simulations single-threaded and
/// fully deterministically; parallelism is purely across entries, and
/// only finished [`CellRecord`] batches cross a thread boundary. With
/// `--trace`, parallel workers buffer each cell's JSONL in memory until
/// commit (serial runs keep streaming), so prefer `--quick` traces when
/// running wide.
pub fn run_suite(suite: &[Exp], len: RunLength, jobs: usize) {
    if jobs <= 1 || suite.len() <= 1 {
        for (_name, f) in suite {
            println!("{}", f(len));
            commit_cells(take_thread_cells());
        }
        return;
    }
    BUFFER_TRACE.store(true, Ordering::Relaxed);
    let next = AtomicUsize::new(0);
    type Slot = (String, Vec<CellRecord>);
    let slots: Mutex<Vec<Option<Slot>>> = Mutex::new(suite.iter().map(|_| None).collect());
    let ready = Condvar::new();
    // Harness-side threads only: every simulation inside stays
    // single-threaded and seeded, so cell results cannot depend on the
    // worker count or interleaving.
    // nfv-lint: allow(thread-spawn) -- harness worker pool; each sim inside stays single-threaded
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(suite.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= suite.len() {
                    break;
                }
                let out = (suite[i].1)(len);
                let cells = take_thread_cells();
                slots.lock().unwrap()[i] = Some((out, cells));
                ready.notify_all();
            });
        }
        // Commit strictly in suite order as results arrive.
        for i in 0..suite.len() {
            let mut guard = slots.lock().unwrap();
            while guard[i].is_none() {
                guard = ready.wait(guard).unwrap();
            }
            let (out, cells) = guard[i].take().unwrap();
            drop(guard);
            println!("{out}");
            commit_cells(cells);
        }
    });
    BUFFER_TRACE.store(false, Ordering::Relaxed);
}

/// Record suite-level telemetry for [`timings_json`]: the worker count and
/// the whole-suite wall clock (comparing a `--jobs N` run's value against
/// a serial run's gives the end-to-end speedup).
pub fn set_suite_meta(jobs: usize, suite_wall_ms: f64) {
    *SUITE_META.lock().unwrap() = Some((jobs, suite_wall_ms));
}

/// Render every recorded cell's metrics as one JSON document. Contains
/// only deterministic fields (simulated time, digests, time series) so two
/// same-seed runs are byte-identical.
pub fn metrics_json() -> String {
    let cells = CELLS.lock().unwrap();
    let mut s = String::from("{\"cells\":[");
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"experiment\":{:?},\"cell\":{:?},\"sim_secs\":{},\"trace_digest\":{}",
            c.experiment, c.cell, c.sim_secs, c.trace_digest
        );
        if let Some(m) = &c.metrics {
            let _ = write!(s, ",\"metrics\":{}", m.to_json());
        }
        s.push('}');
    }
    s.push_str("]}");
    s
}

/// Render every recorded cell's metrics as CSV (one commented section per
/// cell). Used when `--metrics-out` ends in `.csv`.
pub fn metrics_csv() -> String {
    let cells = CELLS.lock().unwrap();
    let mut s = String::new();
    for c in cells.iter() {
        let _ = writeln!(
            s,
            "# {}/{} sim_secs={} trace_digest={}",
            c.experiment, c.cell, c.sim_secs, c.trace_digest
        );
        if let Some(m) = &c.metrics {
            s.push_str(&m.to_csv());
        }
        s.push('\n');
    }
    s
}

/// Render per-cell wall-clock timings as JSON (nondeterministic by nature;
/// kept separate from [`metrics_json`] so that file stays reproducible).
pub fn timings_json() -> String {
    let cells = CELLS.lock().unwrap();
    let mut s = String::from("{\"cells\":[");
    let mut total = 0.0;
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        total += c.wall_ms;
        let _ = write!(
            s,
            "{{\"experiment\":{:?},\"cell\":{:?},\"sim_secs\":{},\"wall_ms\":{:.3}",
            c.experiment, c.cell, c.sim_secs, c.wall_ms
        );
        // Queue self-profiling: raw counters plus per-simulated-second
        // rates, so regressions in event volume or allocation behaviour
        // show up next to the wall-clock they explain.
        let q = &c.queue;
        let per_sec = |x: u64| x as f64 / c.sim_secs.max(1e-9);
        let _ = write!(
            s,
            ",\"queue\":{{\"pushes\":{},\"pops\":{},\"stale_pops\":{},\"cascades\":{},\
             \"cascaded_entries\":{},\"allocs\":{},\"max_len\":{},\
             \"coalesced_pops\":{},\"skipped_ticks\":{},\
             \"pops_per_sim_sec\":{:.1},\"allocs_per_sim_sec\":{:.1}}}",
            q.pushes,
            q.pops,
            c.stale_pops,
            q.cascades,
            q.cascaded_entries,
            q.allocs,
            q.max_len,
            q.coalesced_pops,
            q.skipped_ticks,
            per_sec(q.pops),
            per_sec(q.allocs),
        );
        // Flow-table self-profiling: like `queue`, backend-dependent
        // internals stay in this (timings) file only.
        let f = &c.flow;
        let avg_probe = f.probe_steps as f64 / (f.exact_hits + f.installs).max(1) as f64;
        let _ = write!(
            s,
            ",\"flow\":{{\"active\":{},\"evicted\":{},\"installs\":{},\"recycled\":{},\
             \"exact_hits\":{},\"memo_hits\":{},\"wildcard_hits\":{},\"probe_steps\":{},\
             \"max_probe\":{},\
             \"avg_probe\":{:.3},\"rehashes\":{},\"shards\":{},\"slots\":{},\"pinned\":{}}}}}",
            c.flows_active,
            c.flows_evicted,
            f.installs,
            f.recycled,
            f.exact_hits,
            f.memo_hits,
            f.wildcard_hits,
            f.probe_steps,
            f.max_probe,
            avg_probe,
            f.rehashes,
            f.shards,
            f.slots,
            f.pinned,
        );
    }
    let _ = write!(s, "],\"total_wall_ms\":{total:.3}");
    if let Some((jobs, suite_wall_ms)) = *SUITE_META.lock().unwrap() {
        let _ = write!(s, ",\"jobs\":{jobs},\"suite_wall_ms\":{suite_wall_ms:.3}");
    }
    s.push('}');
    s
}

/// Print per-cell wall-clock timings to stderr, grouped by experiment.
pub fn print_timings() {
    let cells = CELLS.lock().unwrap();
    if cells.is_empty() {
        return;
    }
    eprintln!("nfv-bench: per-cell wall-clock timings");
    for c in cells.iter() {
        eprintln!(
            "  {:>9.1} ms  {}/{} ({} s simulated)",
            c.wall_ms, c.experiment, c.cell, c.sim_secs
        );
    }
}

/// Flush the streaming trace output, if any.
pub fn flush_trace() {
    if let Some(w) = TRACE_OUT.lock().unwrap().as_mut() {
        let _ = w.flush();
    }
}

/// The paper's canonical Low/Medium/High per-packet costs for the
/// single-core chain experiments (§4.2.1).
pub const LOW: u64 = 120;
/// Medium cost.
pub const MED: u64 = 270;
/// High cost.
pub const HIGH: u64 = 550;

/// The four scheduler configurations evaluated throughout §4.
pub fn all_policies() -> Vec<Policy> {
    vec![
        Policy::CfsNormal,
        Policy::CfsBatch,
        Policy::rr_1ms(),
        Policy::rr_100ms(),
    ]
}

/// The four NFVnice variants of Figs 7/10/11.
pub fn all_variants() -> Vec<NfvniceConfig> {
    vec![
        NfvniceConfig::off(),
        NfvniceConfig::cgroups_only(),
        NfvniceConfig::backpressure_only(),
        NfvniceConfig::full(),
    ]
}

/// 10 G line rate in packets/s for a frame size (64 B → 14.88 Mpps).
pub fn line_rate(frame: u32) -> f64 {
    line_rate_pps(10.0, frame)
}

/// Base simulation config for an experiment.
pub fn sim_config(cores: usize, policy: Policy, nfvnice: NfvniceConfig) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.platform.nf_cores = cores;
    cfg.platform.policy = policy;
    cfg.nfvnice = nfvnice;
    if sanitizer_enabled() {
        cfg.sanitizer = SanitizerConfig::strict();
    }
    cfg.obs.trace = OBS_TRACE.load(Ordering::Relaxed);
    cfg.obs.metrics = OBS_METRICS.load(Ordering::Relaxed);
    cfg
}

/// Convenience: build a simulation directly.
pub fn sim(cores: usize, policy: Policy, nfvnice: NfvniceConfig) -> Simulation {
    Simulation::new(sim_config(cores, policy, nfvnice))
}

/// Run length used by experiments: full fidelity or quick (CI) mode.
#[derive(Debug, Clone, Copy)]
pub struct RunLength {
    /// Steady-state measurement duration for throughput experiments.
    pub steady: Duration,
    /// Scale factor applied to long timeline experiments (Figs 13/15a).
    pub timeline_scale: u64,
}

impl RunLength {
    /// Full-fidelity durations (seconds of simulated time).
    pub fn full() -> Self {
        RunLength {
            steady: Duration::from_secs(2),
            timeline_scale: 1,
        }
    }
    /// Quick mode for CI / criterion: shorter steady state, timelines
    /// compressed 10×.
    pub fn quick() -> Self {
        RunLength {
            steady: Duration::from_millis(300),
            timeline_scale: 10,
        }
    }
}

/// Format a pps number as Mpps with 3 decimals.
pub fn mpps(pps: f64) -> String {
    format!("{:.3}", pps / 1e6)
}

/// Format a drop count as the paper does (e.g. "3.58M", "11.2K", "0").
pub fn human_count(x: f64) -> String {
    if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1}K", x / 1e3)
    } else {
        format!("{:.0}", x)
    }
}

/// A plain-text table builder for experiment output.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// Summary line helpers on reports used across experiments.
pub trait ReportExt {
    /// Delivered throughput of chain `c` in Mpps.
    fn chain_mpps(&self, c: usize) -> f64;
}

impl ReportExt for Report {
    fn chain_mpps(&self, c: usize) -> f64 {
        self.chains[c].pps / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "123456".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn human_count_formats() {
        assert_eq!(human_count(3_580_000.0), "3.58M");
        assert_eq!(human_count(11_200.0), "11.2K");
        assert_eq!(human_count(0.0), "0");
    }

    #[test]
    fn line_rate_64() {
        assert!((line_rate(64) / 1e6 - 14.88).abs() < 0.01);
    }
}
