//! Shared experiment plumbing: simulation builders, the paper's canonical
//! NF cost sets, line-rate arithmetic and table rendering.

use nfv_pkt::line_rate_pps;
use nfvnice::{Duration, NfvniceConfig, Policy, Report, SanitizerConfig, SimConfig, Simulation};
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide switch: when set (the `--sanitize` CLI flag), every
/// experiment config built by [`sim_config`] runs with the sim-sanitizer
/// in strict mode, so any invariant violation aborts the bench run.
static SANITIZE: AtomicBool = AtomicBool::new(false);

/// Enable the runtime sim-sanitizer for all subsequently built configs.
pub fn enable_sanitizer() {
    SANITIZE.store(true, Ordering::Relaxed);
}

/// Is the sim-sanitizer globally enabled?
pub fn sanitizer_enabled() -> bool {
    SANITIZE.load(Ordering::Relaxed)
}

/// The paper's canonical Low/Medium/High per-packet costs for the
/// single-core chain experiments (§4.2.1).
pub const LOW: u64 = 120;
/// Medium cost.
pub const MED: u64 = 270;
/// High cost.
pub const HIGH: u64 = 550;

/// The four scheduler configurations evaluated throughout §4.
pub fn all_policies() -> Vec<Policy> {
    vec![
        Policy::CfsNormal,
        Policy::CfsBatch,
        Policy::rr_1ms(),
        Policy::rr_100ms(),
    ]
}

/// The four NFVnice variants of Figs 7/10/11.
pub fn all_variants() -> Vec<NfvniceConfig> {
    vec![
        NfvniceConfig::off(),
        NfvniceConfig::cgroups_only(),
        NfvniceConfig::backpressure_only(),
        NfvniceConfig::full(),
    ]
}

/// 10 G line rate in packets/s for a frame size (64 B → 14.88 Mpps).
pub fn line_rate(frame: u32) -> f64 {
    line_rate_pps(10.0, frame)
}

/// Base simulation config for an experiment.
pub fn sim_config(cores: usize, policy: Policy, nfvnice: NfvniceConfig) -> SimConfig {
    let mut cfg = SimConfig::default();
    cfg.platform.nf_cores = cores;
    cfg.platform.policy = policy;
    cfg.nfvnice = nfvnice;
    if sanitizer_enabled() {
        cfg.sanitizer = SanitizerConfig::strict();
    }
    cfg
}

/// Convenience: build a simulation directly.
pub fn sim(cores: usize, policy: Policy, nfvnice: NfvniceConfig) -> Simulation {
    Simulation::new(sim_config(cores, policy, nfvnice))
}

/// Run length used by experiments: full fidelity or quick (CI) mode.
#[derive(Debug, Clone, Copy)]
pub struct RunLength {
    /// Steady-state measurement duration for throughput experiments.
    pub steady: Duration,
    /// Scale factor applied to long timeline experiments (Figs 13/15a).
    pub timeline_scale: u64,
}

impl RunLength {
    /// Full-fidelity durations (seconds of simulated time).
    pub fn full() -> Self {
        RunLength {
            steady: Duration::from_secs(2),
            timeline_scale: 1,
        }
    }
    /// Quick mode for CI / criterion: shorter steady state, timelines
    /// compressed 10×.
    pub fn quick() -> Self {
        RunLength {
            steady: Duration::from_millis(300),
            timeline_scale: 10,
        }
    }
}

/// Format a pps number as Mpps with 3 decimals.
pub fn mpps(pps: f64) -> String {
    format!("{:.3}", pps / 1e6)
}

/// Format a drop count as the paper does (e.g. "3.58M", "11.2K", "0").
pub fn human_count(x: f64) -> String {
    if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1}K", x / 1e3)
    } else {
        format!("{:.0}", x)
    }
}

/// A plain-text table builder for experiment output.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }
}

/// Summary line helpers on reports used across experiments.
pub trait ReportExt {
    /// Delivered throughput of chain `c` in Mpps.
    fn chain_mpps(&self, c: usize) -> f64;
}

impl ReportExt for Report {
    fn chain_mpps(&self, c: usize) -> f64 {
        self.chains[c].pps / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "123456".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn human_count_formats() {
        assert_eq!(human_count(3_580_000.0), "3.58M");
        assert_eq!(human_count(11_200.0), "11.2K");
        assert_eq!(human_count(0.0), "0");
    }

    #[test]
    fn line_rate_64() {
        assert!((line_rate(64) / 1e6 - 14.88).abs() < 0.01);
    }
}
