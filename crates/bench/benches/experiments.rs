//! One criterion bench per paper table/figure: runs a compressed version of
//! each experiment cell end-to-end (the full-fidelity numbers come from the
//! `nfv-bench` binary). Criterion's measurement here is wall time of the
//! whole simulated cell — i.e. simulator performance on every experiment's
//! workload — while each iteration also sanity-checks the experiment's
//! headline property so a regression in *results* fails loudly.

use criterion::{criterion_group, criterion_main, Criterion};
use nfv_bench::experiments::*;
use nfv_bench::RunLength;
use nfvnice::{NfvniceConfig, Policy};

fn quick() -> RunLength {
    RunLength {
        steady: nfvnice::Duration::from_millis(100),
        timeline_scale: 25,
    }
}

fn bench_cell(c: &mut Criterion, name: &str, mut f: impl FnMut()) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function(name, |b| b.iter(&mut f));
    g.finish();
}

fn fig1_cells(c: &mut Criterion) {
    bench_cell(c, "fig1a_homogeneous_normal", || {
        let r = fig1::run_cell(Policy::CfsNormal, fig1::Variant::Homogeneous, true, quick());
        assert!(r.total_delivered_pps > 0.0);
    });
    bench_cell(c, "fig1b_heterogeneous_normal", || {
        let r = fig1::run_cell(
            Policy::CfsNormal,
            fig1::Variant::Heterogeneous,
            true,
            quick(),
        );
        // Table 2's signature: light NF outruns heavy under CFS
        assert!(r.nfs[2].output_rate_pps > r.nfs[0].output_rate_pps);
    });
}

fn fig7_cells(c: &mut Criterion) {
    bench_cell(c, "fig7_default_batch", || {
        let r = fig7::run_cell(Policy::CfsBatch, NfvniceConfig::off(), quick());
        assert!(r.total_wasted_drops > 0);
    });
    bench_cell(c, "fig7_nfvnice_batch", || {
        let r = fig7::run_cell(Policy::CfsBatch, NfvniceConfig::full(), quick());
        assert!(r.total_wasted_drops < 100);
    });
}

fn multicore_cells(c: &mut Criterion) {
    bench_cell(c, "table5_nfvnice", || {
        let r = multicore::run_table5_cell(NfvniceConfig::full(), quick());
        assert!(r.nfs[0].cpu_util < 0.7, "upstream should idle");
    });
    bench_cell(c, "fig9_two_chains", || {
        let r = multicore::run_fig9_cell(NfvniceConfig::full(), quick());
        assert!(r.chains[0].pps > r.chains[1].pps);
    });
}

fn variable_and_orderings(c: &mut Criterion) {
    bench_cell(c, "fig10_variable_cost_nfvnice", || {
        let r = fig10::run_cell(Policy::CfsBatch, NfvniceConfig::full(), quick());
        assert!(r.total_delivered_pps > 1e6);
    });
    bench_cell(c, "fig11_med_high_low_rr100", || {
        let d = fig11::run_cell(
            [270, 550, 120],
            Policy::rr_100ms(),
            NfvniceConfig::off(),
            quick(),
        );
        let n = fig11::run_cell(
            [270, 550, 120],
            Policy::rr_100ms(),
            NfvniceConfig::full(),
            quick(),
        );
        assert!(
            n.chains[0].pps > d.chains[0].pps,
            "NFVnice rescues RR(100ms)"
        );
    });
    bench_cell(c, "fig12_type3", || {
        let r = fig12::run_cell(3, Policy::CfsBatch, NfvniceConfig::full(), quick());
        assert!(r.total_delivered_pps > 1e6);
    });
}

fn timelines(c: &mut Criterion) {
    bench_cell(c, "fig13_isolation_nfvnice", || {
        let run = fig13::run_cell(NfvniceConfig::full(), quick());
        assert!(run.report.flows[run.tcp_flow].delivered > 0);
    });
    bench_cell(c, "fig14_async_io_64b", || {
        let r = fig14::run_cell(64, true, quick());
        assert!(r.total_delivered_pps > 1e5);
    });
    bench_cell(c, "fig15_diversity6_nfvnice", || {
        let r = fig15::run_diversity_cell(6, NfvniceConfig::full(), quick());
        assert!(r.jain_over_flows() > 0.8);
    });
    bench_cell(c, "fig16_len6_sc_nfvnice", || {
        let r = fig16::run_cell(6, false, NfvniceConfig::full(), quick());
        assert!(r.chains[0].pps > 0.0);
    });
    bench_cell(c, "tuning_high80", || {
        let r = tuning::run_cell(80, 60, quick());
        assert!(r.chains[0].pps > 1e6);
    });
}

fn slo_cells(c: &mut Criterion) {
    bench_cell(c, "slo_budget_vs_ratecost", || {
        let s = slo::run_cell(Policy::Slo, quick());
        let n = slo::run_cell(Policy::CfsNormal, quick());
        // The experiment's headline: the SLO policy holds the interactive
        // chain's p99 inside the budget that rate-cost scheduling misses.
        assert!(slo::meets_budget(&s), "SLO blew the interactive budget");
        assert!(
            !slo::meets_budget(&n),
            "NORMAL met the budget — no contrast"
        );
    });
}

fn scale_cells(c: &mut Criterion) {
    bench_cell(c, "scale_1m_flows", || {
        // The sweep needs ~233 ms to visit its full 2^20-tuple slice at
        // 4.5 Mpps, so this cell runs a touch longer than `quick()`.
        let len = RunLength {
            steady: nfvnice::Duration::from_millis(250),
            timeline_scale: 25,
        };
        let r = scale::run_1m(len);
        assert!(
            r.flows_active >= 1 << 20,
            "table must hold a million concurrent flows"
        );
        assert!(r.flow.max_probe < 256, "probe lengths must stay bounded");
    });
    bench_cell(c, "scale_flash_crowd", || {
        let r = scale::run_flash(quick());
        assert!(r.flows_evicted > 0, "aging must reclaim the crowd");
    });
}

fn elastic_cells(c: &mut Criterion) {
    bench_cell(c, "elastic_scale_out_and_migration", || {
        // This cell needs the full quick length: the controller's dwell
        // and cooldown windows leave too little post-action run at 100 ms.
        let len = RunLength::quick();
        let cells = elastic::cells();
        let bp = elastic::run_cell(cells[0].0, cells[0].1, len);
        let out = elastic::run_cell(cells[1].0, cells[1].1, len);
        let mig = elastic::run_cell(cells[2].0, cells[2].1, len);
        // The experiment's headline: adding capacity beats shedding —
        // each elastic freedom must out-deliver backpressure-only.
        assert!(out.nf_scale_outs >= 1, "no replica was deployed");
        assert!(mig.nf_migrations >= 1, "no migration happened");
        assert!(out.total_delivered_pps > bp.total_delivered_pps);
        assert!(mig.total_delivered_pps > bp.total_delivered_pps);
    });
}

criterion_group!(
    benches,
    fig1_cells,
    fig7_cells,
    multicore_cells,
    variable_and_orderings,
    timelines,
    slo_cells,
    scale_cells,
    elastic_cells
);
criterion_main!(benches);
