//! Microbenchmarks of the hot-path substrate primitives: descriptor rings,
//! mempool, event queue, flow table, service-time histogram and a full
//! scheduler dispatch cycle.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use nfv_des::{Duration, DurationHistogram, EventQueue, QueueKind, SimTime};
use nfv_pkt::{ChainId, FiveTuple, FlowId, FlowTable, Mempool, Packet, PktId, Proto, Ring};
use nfv_sched::{CfsParams, OsScheduler, Policy, SwitchKind};

fn ring_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring");
    g.throughput(Throughput::Elements(1));
    g.bench_function("enqueue_dequeue", |b| {
        let mut ring = Ring::new(4096);
        let mut i = 0u32;
        b.iter(|| {
            ring.enqueue(black_box(PktId(i)));
            i = i.wrapping_add(1);
            black_box(ring.dequeue());
        });
    });
    g.bench_function("burst32", |b| {
        let mut ring = Ring::new(4096);
        let mut out = Vec::with_capacity(32);
        b.iter(|| {
            for i in 0..32u32 {
                ring.enqueue(PktId(i));
            }
            out.clear();
            ring.dequeue_burst(32, &mut out);
            black_box(out.len());
        });
    });
    g.finish();
}

fn mempool_ops(c: &mut Criterion) {
    c.bench_function("mempool/alloc_free", |b| {
        let mut pool = Mempool::new(4096);
        let pkt = Packet::new(FlowId(0), ChainId(0), 64, SimTime::ZERO);
        b.iter(|| {
            let id = pool.alloc(black_box(pkt.clone())).unwrap();
            pool.free(id);
        });
    });
}

fn event_queue_ops(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(SimTime::from_nanos((i * 7919) % 100_000 + 100_000), i);
            }
            while let Some(x) = q.pop() {
                black_box(x);
            }
        });
    });
    // Backend comparison cells: same 1k-event workload pinned to each
    // queue implementation, reported as ops/sec (one op = push + pop).
    // The wheel must not lose to the heap on this mixed near/far pattern —
    // run-to-run noise aside, a wheel slower than ~half the heap's rate
    // here means a cascade or occupancy-scan regression.
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(1000));
    for (name, kind) in [("wheel_1k", QueueKind::Wheel), ("heap_1k", QueueKind::Heap)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut q = EventQueue::with_kind(kind);
                for i in 0..1000u64 {
                    q.push(SimTime::from_nanos((i * 7919) % 100_000 + 100_000), i);
                }
                let mut popped = 0u64;
                while let Some(x) = q.pop() {
                    black_box(x);
                    popped += 1;
                }
                assert_eq!(popped, 1000, "queue lost events");
            });
        });
    }
    g.finish();
}

fn flow_table_ops(c: &mut Criterion) {
    c.bench_function("flow_table/classify", |b| {
        let mut ft = FlowTable::new();
        let tuples: Vec<FiveTuple> = (0..64)
            .map(|i| FiveTuple::synthetic(i, Proto::Udp))
            .collect();
        for t in &tuples {
            ft.install(*t, ChainId(0));
        }
        let mut i = 0;
        b.iter(|| {
            let t = &tuples[i % 64];
            i += 1;
            black_box(ft.classify(t, 64));
        });
    });
}

fn histogram_ops(c: &mut Criterion) {
    c.bench_function("histogram/record", |b| {
        let mut h = DurationHistogram::new();
        let mut i = 1u64;
        b.iter(|| {
            h.record(Duration::from_nanos(i % 10_000 + 1));
            i += 1;
        });
    });
    c.bench_function("histogram/median", |b| {
        let mut h = DurationHistogram::new();
        for i in 1..10_000u64 {
            h.record(Duration::from_nanos(i));
        }
        b.iter(|| black_box(h.median()));
    });
}

fn scheduler_cycle(c: &mut Criterion) {
    c.bench_function("scheduler/dispatch_cycle_cfs", |b| {
        let mut s = OsScheduler::new(1, Policy::CfsNormal, CfsParams::default(), Duration::ZERO);
        let tasks: Vec<_> = (0..4).map(|i| s.add_task(format!("t{i}"), 0)).collect();
        let mut now = SimTime::ZERO;
        for t in &tasks {
            s.wake(*t, now);
        }
        b.iter(|| {
            if s.current(0).is_none() {
                s.dispatch(0, now);
            }
            let step = Duration::from_micros(100);
            s.charge_current(0, step);
            now += step;
            if s.need_resched(0, now) {
                s.requeue_current(0, now, SwitchKind::Involuntary);
            }
        });
    });
}

criterion_group!(
    benches,
    ring_ops,
    mempool_ops,
    event_queue_ops,
    flow_table_ops,
    histogram_ops,
    scheduler_cycle
);
criterion_main!(benches);
