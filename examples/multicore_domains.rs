//! Four core domains, shared chains, and cross-core backpressure.
//!
//! Four NFs pinned one-per-core form two chains that cross core
//! boundaries and share their entry NF: a cheap chain that stays fast and
//! an expensive chain that bottlenecks on its last hop. The engine keeps
//! one `CoreDomain` per core — activity flag, homed NFs, CPU accounting —
//! so each core's scheduling proceeds independently while backpressure
//! coordinates them: the bottleneck on core 3 throttles admission at the
//! shared entry NF on core 0 without dragging the clean chain down.
//!
//! Run with: `cargo run --release --bin multicore_domains`

use nfvnice::{Duration, NfSpec, NfvniceConfig, Policy, SimConfig, Simulation};

fn main() {
    let mut cfg = SimConfig::default();
    cfg.platform.nf_cores = 4;
    cfg.platform.policy = Policy::CfsBatch;
    cfg.nfvnice = NfvniceConfig::full();
    let mut sim = Simulation::new(cfg);

    let entry = sim.add_nf(NfSpec::new("classifier", 0, 200));
    let nat = sim.add_nf(NfSpec::new("nat", 1, 300));
    let shaper = sim.add_nf(NfSpec::new("shaper", 2, 450));
    let dpi = sim.add_nf(NfSpec::new("dpi", 3, 8_000)); // ~325 kpps bottleneck

    let clean = sim.add_chain(&[entry, nat]);
    let deep = sim.add_chain(&[entry, shaper, dpi]);
    sim.add_udp(clean, 2_000_000.0, 64);
    sim.add_udp(deep, 2_000_000.0, 64);

    let r = sim.run(Duration::from_secs(2));

    println!("multicore domains: 4 cores, shared entry, cross-core chains\n");
    println!("per-NF view (one NF per core domain):");
    println!("  nf          core  processed    cpu%   shares");
    for nf in &r.nfs {
        println!(
            "  {:<10}  {:>4}  {:>9}  {:>5.1}  {:>7}",
            nf.name,
            nf.core,
            nf.processed,
            nf.cpu_util * 100.0,
            nf.final_shares
        );
    }
    println!("\nper-chain delivery:");
    for (label, flow) in [
        ("clean (entry→nat)", 0usize),
        ("deep (entry→shaper→dpi)", 1),
    ] {
        println!(
            "  {:<24} {:>8.0} kpps  (p99 {:?})",
            label,
            r.flows[flow].delivered_pps / 1e3,
            r.flows[flow].latency_p99
        );
    }
    println!("\nthrottle events: {}", r.throttle_events);
    // Isolation: the clean chain keeps its full 2 Mpps offered load even
    // though it shares its entry NF with the bottlenecked deep chain,
    // which stays pinned near dpi's ~325 kpps service rate.
    assert!(
        r.flows[0].delivered_pps > 0.95 * 2_000_000.0,
        "clean chain must not be dragged down by the deep chain's bottleneck"
    );
    assert!(
        r.flows[1].delivered_pps < 0.5 * 2_000_000.0,
        "deep chain should be limited by its dpi bottleneck"
    );
}
