//! I/O-bound network functions: blocking writes vs `libnf`'s batched
//! asynchronous writes with double buffering (§3.4 / Fig 14).
//!
//! Two flows traverse a forwarder and a logging NF; only flow 1 is logged
//! to disk. With synchronous writes the logger stalls on the device and
//! both flows suffer; with the async engine the logger overlaps I/O with
//! processing and the non-logging flow is fully isolated.
//!
//! Run with: `cargo run --release --bin io_bound_nf`

use nfvnice::{Duration, IoMode, NfIoSpec, NfSpec, NfvniceConfig, Policy, SimConfig, Simulation};

fn run(mode: IoMode, variant: NfvniceConfig) -> nfvnice::Report {
    let mut cfg = SimConfig::default();
    cfg.platform.nf_cores = 1;
    cfg.platform.policy = Policy::CfsBatch;
    cfg.nfvnice = variant;
    let mut sim = Simulation::new(cfg);
    let fwd = sim.add_nf(NfSpec::new("forwarder", 0, 250));
    let logger = sim.add_nf(NfSpec::new("pkt-logger", 0, 300).with_io(NfIoSpec {
        bytes_per_packet: 256,
        mode,
    }));
    let c1 = sim.add_chain(&[fwd, logger]);
    let c2 = sim.add_chain(&[fwd, logger]);
    let logged = sim.add_udp(c1, 2_000_000.0, 256);
    sim.add_udp(c2, 2_000_000.0, 256);
    sim.mark_io_flow(logged);
    sim.run(Duration::from_secs(1))
}

fn main() {
    let sync = run(IoMode::Sync, NfvniceConfig::off());
    let async_ = run(
        IoMode::Async {
            buf_size: 64 * 1024,
        },
        NfvniceConfig::full(),
    );
    println!("mode   logged-flow kpps   other-flow kpps   aggregate Mpps");
    for (name, r) in [("sync ", &sync), ("async", &async_)] {
        println!(
            "{name}  {:>16.1}  {:>16.1}  {:>14.3}",
            r.flows[0].delivered_pps / 1e3,
            r.flows[1].delivered_pps / 1e3,
            r.total_delivered_pps / 1e6
        );
    }
    println!(
        "\nAsync double buffering keeps the logger off the blocking path:\n\
         the device absorbs {:.0} MB/s in the background while packets flow.",
        async_.flows[0].delivered_pps * 256.0 / 1e6
    );
}
