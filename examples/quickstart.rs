//! Quickstart: deploy a three-NF service chain on one shared core, drive it
//! at 10 G line rate, and compare the stock scheduler against NFVnice.
//!
//! Run with: `cargo run --release --bin quickstart`

use nfvnice::{Duration, NfSpec, NfvniceConfig, Policy, SimConfig, Simulation};

fn run(variant: NfvniceConfig) -> nfvnice::Report {
    let mut cfg = SimConfig::default();
    cfg.platform.nf_cores = 1;
    cfg.platform.policy = Policy::CfsBatch;
    cfg.nfvnice = variant;

    let mut sim = Simulation::new(cfg);
    // The paper's canonical heterogeneous chain: 120 / 270 / 550 cycles
    // per packet, all three NFs contending for the same core.
    let low = sim.add_nf(NfSpec::new("firewall-low", 0, 120));
    let med = sim.add_nf(NfSpec::new("nat-med", 0, 270));
    let high = sim.add_nf(NfSpec::new("dpi-high", 0, 550));
    let chain = sim.add_chain(&[low, med, high]);
    // One UDP flow at 64 B line rate (14.88 Mpps) — far beyond the chain's
    // ~2.8 Mpps single-core capacity, so resource management decides who
    // does useful work and who wastes it.
    sim.add_udp(chain, 14_880_000.0, 64);
    sim.run(Duration::from_secs(1))
}

fn main() {
    println!("== Default (vanilla CFS-batch, no NFVnice) ==");
    let default = run(NfvniceConfig::off());
    print!("{}", default.summary());

    println!("\n== NFVnice (cgroup weights + chain-aware backpressure) ==");
    let nice = run(NfvniceConfig::full());
    print!("{}", nice.summary());

    println!(
        "\nthroughput: {:.3} -> {:.3} Mpps   wasted work: {} -> {} packets",
        default.throughput_mpps(),
        nice.throughput_mpps(),
        default.total_wasted_drops,
        nice.total_wasted_drops,
    );
}
