//! Chain-aware backpressure across cores, with a custom packet handler.
//!
//! Reproduces the Table 5 scenario — a chain whose per-NF cost grows
//! 550 → 2200 → 4500 cycles, one NF per core — and shows how selective
//! early discard at the chain entry turns upstream cores from 100 % busy
//! (doing doomed work) to nearly idle, without losing a packet of
//! delivered throughput. The middle NF runs a custom handler (a toy
//! firewall) to demonstrate the `PacketHandler` API.
//!
//! Run with: `cargo run --release --bin service_chain_backpressure`

use nfvnice::{
    Duration, NfAction, NfSpec, NfvniceConfig, ObsConfig, Packet, PacketHandler, Policy, SimConfig,
    Simulation, TraceKind,
};

/// A firewall that drops every 100th packet (policy denial, not congestion)
/// and counts what it saw.
struct SamplingFirewall {
    seen: u64,
}

impl PacketHandler for SamplingFirewall {
    fn handle(&mut self, _pkt: &mut Packet, _now: nfvnice::SimTime) -> NfAction {
        self.seen += 1;
        if self.seen.is_multiple_of(100) {
            NfAction::Drop
        } else {
            NfAction::Forward
        }
    }
}

fn run(variant: NfvniceConfig) -> (Simulation, nfvnice::Report) {
    let mut cfg = SimConfig::default();
    cfg.platform.nf_cores = 3;
    cfg.platform.policy = Policy::CfsNormal;
    cfg.nfvnice = variant;
    // Record structured events + time series (pure observers: the trace
    // digest is identical with observability off).
    cfg.obs = ObsConfig::all();
    let mut sim = Simulation::new(cfg);
    let nf1 = sim.add_nf(NfSpec::new("classifier", 0, 550));
    let nf2 = sim.add_nf_with_handler(
        NfSpec::new("firewall", 1, 2200),
        Box::new(SamplingFirewall { seen: 0 }),
    );
    let nf3 = sim.add_nf(NfSpec::new("dpi", 2, 4500));
    let chain = sim.add_chain(&[nf1, nf2, nf3]);
    sim.add_udp(chain, 14_880_000.0, 64);
    let r = sim.run(Duration::from_secs(1));
    (sim, r)
}

fn main() {
    for variant in [NfvniceConfig::off(), NfvniceConfig::full()] {
        let (mut sim, r) = run(variant);
        println!("== {} ==", r.variant);
        for nf in &r.nfs {
            println!(
                "  {:<11} core{}  service {:>9.0} pps   wasted {:>9.0} pps   cpu {:>5.1}%",
                nf.name,
                nf.core,
                nf.svc_rate_pps,
                nf.wasted_rate_pps,
                nf.cpu_util * 100.0
            );
        }
        println!(
            "  delivered {:.3} Mpps, shed-at-entry {} pkts, wasted {} pkts",
            r.throughput_mpps(),
            r.entry_drops,
            r.total_wasted_drops
        );
        // Observability: reconstruct the throttle timeline from the trace
        // and summarize the sampled time series.
        let events = sim.take_trace();
        let first_throttle = events
            .iter()
            .find(|e| matches!(e.kind, TraceKind::ThrottleEnter { .. }));
        match first_throttle {
            Some(e) => {
                let enters = events
                    .iter()
                    .filter(|e| matches!(e.kind, TraceKind::ThrottleEnter { .. }))
                    .count();
                let share_writes = events
                    .iter()
                    .filter(|e| matches!(e.kind, TraceKind::ShareWrite { .. }))
                    .count();
                println!(
                    "  trace: {} events; first throttle at t={} us; {} throttle enters, {} share writes",
                    events.len(),
                    e.t.as_micros(),
                    enters,
                    share_writes
                );
            }
            None => println!("  trace: {} events; no throttling occurred", events.len()),
        }
        let m = sim.take_metrics();
        for nf in &m.nfs {
            let peak_q = nf.qlen.iter().copied().max().unwrap_or(0);
            let throttled_ticks = nf.throttled.iter().filter(|&&t| t == 1).count();
            println!(
                "  metrics: {:<11} peak queue {:>4}  throttled {:>4}/{} sampled ticks",
                nf.name,
                peak_q,
                throttled_ticks,
                m.samples()
            );
        }
        println!();
    }
    println!("Backpressure sheds doomed packets before any CPU touches them:");
    println!("upstream cores drop from 100% utilization to a trickle while the");
    println!("bottleneck NF keeps its full line of work.");
}
