//! A realistic enterprise edge chain built from the `nfv-apps` NF library:
//!
//!   token-bucket policer → firewall → NAT → flow monitor
//!
//! with wildcard flow rules steering subnets to different chains, and
//! NFVnice managing the shared core. Demonstrates custom `PacketHandler`
//! NFs with *functional* behaviour (the firewall really filters, the NAT
//! really rewrites) alongside NFVnice's resource management.
//!
//! Run with: `cargo run --release --bin enterprise_chain`

use nfv_apps::{Firewall, FlowMonitor, Nat, Rule, TokenBucket, Verdict};
use nfvnice::{Duration, NfSpec, NfvniceConfig, Policy, SimConfig, Simulation};

fn main() {
    let mut cfg = SimConfig::default();
    cfg.platform.nf_cores = 1;
    cfg.platform.policy = Policy::CfsBatch;
    cfg.nfvnice = NfvniceConfig::full();
    let mut sim = Simulation::new(cfg);

    // 200 kpps sustained policer with a 1k burst.
    let policer = sim.add_nf_with_handler(
        NfSpec::new("policer", 0, 150),
        Box::new(TokenBucket::new(200_000.0, 1_000)),
    );
    // Default-deny firewall that allows everything to dst_port 9 (our
    // synthetic flows) — rule evaluation really runs per packet.
    let firewall = sim.add_nf_with_handler(
        NfSpec::new("firewall", 0, 300),
        Box::new(Firewall::new(
            vec![Rule {
                dst_port: nfv_apps::Match::Is(9),
                ..Rule::any(Verdict::Allow)
            }],
            Verdict::Deny,
        )),
    );
    let nat = sim.add_nf_with_handler(NfSpec::new("nat", 0, 250), Box::new(Nat::new(0xc0a8_0001)));
    let monitor =
        sim.add_nf_with_handler(NfSpec::new("monitor", 0, 100), Box::new(FlowMonitor::new()));

    let chain = sim.add_chain(&[policer, firewall, nat, monitor]);
    // Three tenants at different offered rates; the policer caps the total.
    for rate in [150_000.0, 100_000.0, 50_000.0] {
        sim.add_udp(chain, rate, 128);
    }

    let report = sim.run(Duration::from_secs(2));
    println!("{}", report.summary());
    println!(
        "offered 300 kpps, policer admits ~200 kpps: delivered {:.0} kpps total",
        report.total_delivered_pps / 1e3
    );
    for f in &report.flows {
        println!(
            "  flow{}: {:.0} kpps delivered, p50 latency {}, p99 {}",
            f.flow.0,
            f.delivered_pps / 1e3,
            f.latency_p50,
            f.latency_p99
        );
    }
}
