//! Performance isolation between responsive and non-responsive flows
//! (the paper's §4.3.4 / Fig 13 scenario, compressed 5×).
//!
//! A TCP flow shares two NFs on one core with ten UDP flows whose chain
//! continues to a heavy bottleneck NF on another core. Without NFVnice,
//! the UDP packets — doomed to die at the bottleneck — saturate the shared
//! core and crush TCP. With per-flow backpressure the UDP load is shed at
//! entry and TCP keeps its bandwidth while UDP still gets the bottleneck
//! rate.
//!
//! Run with: `cargo run --release --bin performance_isolation`

use nfvnice::{Duration, NfSpec, NfvniceConfig, Policy, SimConfig, SimTime, Simulation};

const SCALE: u64 = 5; // compress the paper's 55 s timeline to 11 s

fn run(variant: NfvniceConfig) -> (nfvnice::Report, usize, Vec<usize>) {
    let mut cfg = SimConfig::default();
    cfg.platform.nf_cores = 2;
    cfg.platform.policy = Policy::CfsBatch;
    cfg.nfvnice = variant;
    let mut sim = Simulation::new(cfg);
    let nf1 = sim.add_nf(NfSpec::new("NF1-low", 0, 120));
    let nf2 = sim.add_nf(NfSpec::new("NF2-med", 0, 270));
    let nf3 = sim.add_nf(NfSpec::new("NF3-heavy", 1, 4753)); // ~280 Mbit/s of 64 B
    let tcp_chain = sim.add_chain(&[nf1, nf2]);
    let tcp = sim.add_tcp_with(tcp_chain, 1500, Duration::from_micros(100), |t| {
        t.with_max_cwnd(33.0) // receiver window ⇒ ~4 Gbit/s ceiling
    });
    let mut udp = Vec::new();
    for _ in 0..10 {
        let chain = sim.add_chain(&[nf1, nf2, nf3]); // per-flow chain
        let f = sim.add_udp_with(chain, 800_000.0, 64, |f| {
            f.window(
                SimTime::from_millis(15_000 / SCALE),
                SimTime::from_millis(40_000 / SCALE),
            )
        });
        udp.push(f.index());
    }
    let r = sim.run(Duration::from_millis(55_000 / SCALE));
    (r, tcp.index(), udp)
}

fn main() {
    let (d, dtcp, dudp) = run(NfvniceConfig::off());
    let (n, ntcp, nudp) = run(NfvniceConfig::full());
    println!(
        "sec   TCP Mbps (Default)  UDP Mbps (Default)  TCP Mbps (NFVnice)  UDP Mbps (NFVnice)"
    );
    for sec in 0..d.series.flow_mbps[dtcp].len() {
        let sum = |r: &nfvnice::Report, flows: &[usize]| -> f64 {
            flows
                .iter()
                .map(|&f| r.series.flow_mbps[f].get(sec).copied().unwrap_or(0.0))
                .sum()
        };
        println!(
            "{:>3}   {:>18.1}  {:>18.1}  {:>18.1}  {:>18.1}",
            (sec as u64 + 1) * SCALE,
            d.series.flow_mbps[dtcp][sec],
            sum(&d, &dudp),
            n.series.flow_mbps[ntcp][sec],
            sum(&n, &nudp),
        );
    }
    println!("\nWhile UDP blasts (middle rows), default TCP collapses; NFVnice holds it.");
}
