//! A flash crowd hitting a reactively-learned flow table.
//!
//! A background tenant keeps a steady working set of 4 Ki flows alive
//! through a match-anything wildcard rule. At t = 30 ms a flash crowd of
//! 64 Ki brand-new sources arrives for 30 ms and vanishes. The flow
//! table learns every tuple on first sight (exact-match entries minted
//! by the wildcard), and epoch-based aging — driven from the monitor
//! tick — evicts the crowd once it goes idle, so the table's footprint
//! follows the offered working set instead of growing monotonically.
//!
//! The example prints the installed-flow count over time (the ramp, the
//! plateau, the decay) and the table's end-of-run self-profile.
//!
//! Run with: `cargo run --release --bin flash_crowd`

use nfvnice::{tenant, Duration, FlowAging, NfSpec, SimConfig, SimTime, Simulation, TenantSpec};

const RUN_MS: u64 = 120;
const CROWD_START_MS: u64 = 30;
const CROWD_STOP_MS: u64 = 60;

fn main() {
    let mut cfg = SimConfig::default();
    cfg.platform.nf_cores = 1;
    // Learned flows idle for more than 2 epochs (an epoch advances every
    // 8 monitor ticks = 8 ms here) are evicted; explicit installs and TCP
    // flows are pinned and never age out.
    cfg.platform.flow_aging = FlowAging {
        idle_epochs: 2,
        epoch_ticks: 8,
    };
    cfg.obs.metrics = true;
    let mut sim = Simulation::new(cfg);

    let nf = sim.add_nf(NfSpec::new("edge", 0, 120));
    let chain = sim.add_chain(&[nf]);

    // Steady background: tenant 0 sweeps a 4 Ki-tuple slice at 0.5 Mpps.
    let bg = tenant(TenantSpec {
        index: 0,
        flows: 4_096,
        rate_pps: 0.5e6,
        frame_size: 64,
    });
    sim.add_wildcard(bg.pattern, chain, 0);
    sim.add_sweep(bg.sweep);

    // The crowd: 64 Ki new tuples at 3 Mpps, present for 30 ms only.
    let crowd = tenant(TenantSpec {
        index: 1,
        flows: 65_536,
        rate_pps: 3.0e6,
        frame_size: 64,
    });
    sim.add_wildcard(crowd.pattern, chain, 0);
    sim.add_sweep(crowd.sweep.window(
        SimTime::from_millis(CROWD_START_MS),
        SimTime::from_millis(CROWD_STOP_MS),
    ));

    let r = sim.run(Duration::from_millis(RUN_MS));
    sim.sanitizer.assert_clean();

    let m = sim.take_metrics();
    println!("installed flows over time (one sample per 10 ms):");
    for (i, chunk) in m.flows_active.chunks(10).enumerate() {
        let active = chunk.last().copied().unwrap_or(0);
        let evicted = m
            .flows_evicted
            .get(i * 10 + chunk.len() - 1)
            .copied()
            .unwrap_or(0);
        let bar = "#".repeat((active / 2_048) as usize);
        println!(
            "  t={:>3} ms  active={:>6}  evicted={:>6}  {bar}",
            (i + 1) * 10,
            active,
            evicted
        );
    }

    let f = &r.flow;
    println!();
    println!(
        "end of run: {} flows installed, {} evicted, {:.3} Mpps delivered",
        r.flows_active,
        r.flows_evicted,
        r.throughput_mpps()
    );
    println!(
        "flow table: {} shards x {} slots, {} installs ({} ids recycled), max probe {}",
        f.shards,
        f.slots / f.shards.max(1),
        f.installs,
        f.recycled,
        f.max_probe
    );

    // The crowd must have been learned and then reclaimed: the table ends
    // near the background working set, not at background + crowd.
    assert!(r.flows_evicted >= 65_536, "aging must reclaim the crowd");
    assert!(
        r.flows_active < 16_384,
        "table must shrink back to the background working set"
    );
    println!();
    println!("The table's footprint tracked the offered working set: the crowd's");
    println!("65,536 learned entries were evicted within a few idle epochs and");
    println!("their FlowIds recycled for later arrivals.");
}
