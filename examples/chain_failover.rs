//! NF failure and recovery in a loaded service chain.
//!
//! The canonical Low/Med/High chain shares one core at an offered load
//! above its capacity, so backpressure is actively throttling when the
//! bottleneck NF is crashed mid-run. The example contrasts the recovery
//! policy on and off:
//!
//! - with recovery, the manager clears the dead NF's backpressure marks,
//!   sheds the chain at entry during the outage, respawns the NF after
//!   10 ms and the chain returns to its pre-crash goodput;
//! - without recovery, the chain stays down — but degrades *gracefully*:
//!   packets are shed at entry before any CPU touches them, nothing
//!   leaks from the mempool, and no NF panics or spins on doomed work.
//!
//! A second scenario injects a stall (the NF spins without progress) and
//! lets the liveness watchdog detect and restart it.
//!
//! Run with: `cargo run --release --bin chain_failover`

use nfvnice::{
    Duration, FaultKind, NfId, NfSpec, ObsConfig, Report, SimConfig, SimTime, Simulation, TraceKind,
};

const CRASH_AT_MS: u64 = 300;
const RUN_MS: u64 = 900;

fn build(recovery: bool, kind: FaultKind, stall_ticks: u32) -> Simulation {
    let mut cfg = SimConfig::default();
    cfg.platform.nf_cores = 1;
    cfg.obs = ObsConfig::all();
    cfg.faults.recovery = recovery;
    cfg.faults.stall_ticks = stall_ticks;
    // NfId(2) is the bottleneck "high" NF deployed below.
    cfg.faults = cfg
        .faults
        .with_fault(SimTime::from_millis(CRASH_AT_MS), NfId(2), kind);
    let mut sim = Simulation::new(cfg);
    let low = sim.add_nf(NfSpec::new("low", 0, 120));
    let med = sim.add_nf(NfSpec::new("med", 0, 270));
    let high = sim.add_nf(NfSpec::new("high", 0, 550));
    let chain = sim.add_chain(&[low, med, high]);
    sim.add_udp(chain, 3_200_000.0, 64);
    sim
}

fn describe(title: &str, sim: &mut Simulation, r: &Report) {
    println!("== {title} ==");
    println!(
        "  delivered {:.3} Mpps over {} ms  crashes={} restarts={} stalls_detected={}",
        r.throughput_mpps(),
        RUN_MS,
        r.nf_crashes,
        r.nf_restarts,
        r.nf_stalls_detected,
    );
    println!(
        "  drops: entry-shed={}  dead-NF={}  wasted-downstream={}",
        r.entry_drops, r.nf_down_drops, r.total_wasted_drops
    );
    // Per-second goodput from the report series shows the dip and the
    // recovery (crash lands in second 0).
    let chain_mbps: Vec<String> = r.series.flow_mbps[0]
        .iter()
        .map(|m| format!("{m:.0}"))
        .collect();
    println!("  per-second goodput (Mbit/s): [{}]", chain_mbps.join(", "));
    let events = sim.take_trace();
    for e in &events {
        match e.kind {
            TraceKind::NfCrash { nf } => {
                println!("  t={:>6} us  crash      NF{nf}", e.t.as_micros())
            }
            TraceKind::NfStallDetect { nf } => {
                println!(
                    "  t={:>6} us  stall-detect NF{nf} (watchdog)",
                    e.t.as_micros()
                )
            }
            TraceKind::NfRestart { nf } => {
                println!("  t={:>6} us  restart    NF{nf}", e.t.as_micros())
            }
            _ => {}
        }
    }
    println!();
}

fn main() {
    let run = Duration::from_millis(RUN_MS);

    let mut sim = build(true, FaultKind::Crash, 0);
    let r = sim.run(run);
    sim.sanitizer.assert_clean();
    describe("bottleneck crash, recovery ON", &mut sim, &r);
    assert_eq!(r.nf_restarts, 1, "recovery must respawn the crashed NF");

    let mut sim = build(false, FaultKind::Crash, 0);
    let r = sim.run(run);
    sim.sanitizer.assert_clean();
    describe("bottleneck crash, recovery OFF", &mut sim, &r);
    assert_eq!(r.nf_restarts, 0);

    let mut sim = build(true, FaultKind::Stall, 5);
    let r = sim.run(run);
    sim.sanitizer.assert_clean();
    describe("bottleneck stall, watchdog ON", &mut sim, &r);
    assert_eq!(r.nf_stalls_detected, 1, "watchdog must flag the stall");

    println!("A dead bottleneck never wedges the system: its backpressure marks");
    println!("are cleared at crash time, its packets return to the mempool, and");
    println!("chains through it shed at entry until the respawn brings it back.");
}
